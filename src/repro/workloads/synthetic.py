"""Semi-synthetic application traces (Section III-A methodology).

The limitation study of the paper evaluates FTIO on traces built from real IOR
phases: an application is a sequence of J non-overlapping iterations, each of
which has a compute phase of length t_cpu (drawn from a truncated normal
distribution) followed by an I/O phase picked at random from a library of
traced phases.  Each of the P processes can additionally be delayed by δ_k
drawn from an exponential distribution of mean ϕ (process 0 keeps δ_0 = 0), to
model desynchronization and I/O variability.  Optionally, single-process noise
traces are overlaid.

This module reproduces that generator with a synthetic phase library
(:class:`PhaseLibrary`) standing in for the 99 traced IOR phases — each phase
has 32 processes writing ~3.5 GB at roughly 10 GB/s, with durations spread
over [10.2, 13.3] s like the paper's traces.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.constants import GIB, MIB
from repro.exceptions import WorkloadError
from repro.trace.record import GroundTruth, IOPhase, IORequest
from repro.trace.trace import Trace
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_non_negative, check_positive_int
from repro.workloads.ior import ior_phase
from repro.workloads.noise import NoiseLevel, add_noise


@dataclass(frozen=True)
class PhaseLibrary:
    """A library of traced single I/O phases to draw from.

    Each entry is a list of requests with start times relative to the phase
    beginning (process 0 starts at 0).  The default library mimics the paper's
    99 IOR phases: 32 processes, ~3.5 GB, average duration ≈ 10.4 s.
    """

    phases: tuple[tuple[IORequest, ...], ...]
    ranks: int

    def __post_init__(self) -> None:
        if not self.phases:
            raise WorkloadError("a phase library needs at least one phase")

    @property
    def size(self) -> int:
        """Number of phases in the library."""
        return len(self.phases)

    def durations(self) -> np.ndarray:
        """Wall-clock duration of every phase in the library."""
        return np.array(
            [max(r.end for r in p) - min(r.start for r in p) for p in self.phases]
        )

    def mean_duration(self) -> float:
        """Average phase duration (the paper's ≈ 10.4 s)."""
        return float(self.durations().mean())

    def pick(self, rng: np.random.Generator) -> tuple[IORequest, ...]:
        """Randomly select one phase."""
        return self.phases[int(rng.integers(0, self.size))]

    @classmethod
    def generate(
        cls,
        *,
        n_phases: int = 99,
        ranks: int = 32,
        volume_per_rank: int = int(3.5 * GIB),
        request_size: int = 32 * MIB,
        aggregate_bandwidth: float = 10e9,
        duration_spread: float = 0.12,
        seed: SeedLike = None,
    ) -> "PhaseLibrary":
        """Generate a synthetic phase library with the paper's characteristics."""
        check_positive_int(n_phases, "n_phases")
        rng = as_generator(seed)
        phases: list[tuple[IORequest, ...]] = []
        for _ in range(n_phases):
            # Vary the effective bandwidth per traced run so durations spread
            # like the real phases did (file-system variability).
            factor = float(np.clip(rng.normal(1.0, duration_spread), 0.7, 1.3))
            requests = ior_phase(
                ranks=ranks,
                volume_per_rank=volume_per_rank,
                request_size=request_size,
                aggregate_bandwidth=aggregate_bandwidth * factor,
                duration_jitter=0.05,
                start=0.0,
                seed=rng,
            )
            phases.append(tuple(requests))
        return cls(phases=tuple(phases), ranks=ranks)


@dataclass(frozen=True)
class SyntheticAppConfig:
    """Parameters of one semi-synthetic application trace (Section III-A).

    Attributes
    ----------
    iterations:
        J, the number of compute+I/O iterations (paper: 20).
    compute_mean, compute_std:
        µ and σ of the truncated normal distribution of t_cpu (seconds).
    desync_mean:
        ϕ, the mean of the exponential per-process delay δ_k (0 disables it).
    noise:
        Background noise level overlaid on the final trace.
    start_offset:
        Time before the first compute phase.
    """

    iterations: int = 20
    compute_mean: float = 11.0
    compute_std: float = 0.0
    desync_mean: float = 0.0
    noise: NoiseLevel | str = NoiseLevel.NONE
    start_offset: float = 0.0

    def __post_init__(self) -> None:
        check_positive_int(self.iterations, "iterations")
        check_non_negative(self.compute_mean, "compute_mean")
        check_non_negative(self.compute_std, "compute_std")
        check_non_negative(self.desync_mean, "desync_mean")
        check_non_negative(self.start_offset, "start_offset")


@dataclass
class SemiSyntheticGenerator:
    """Generator of semi-synthetic application traces from a phase library."""

    library: PhaseLibrary = field(default_factory=lambda: PhaseLibrary.generate(seed=0))

    def generate(self, config: SyntheticAppConfig, *, seed: SeedLike = None) -> Trace:
        """Generate one application trace following the Section III-A recipe."""
        rng = as_generator(seed)
        requests: list[IORequest] = []
        phases: list[IOPhase] = []
        cursor = config.start_offset
        for _ in range(config.iterations):
            # Compute phase: truncated normal (re-draw until positive).
            cursor += _truncated_normal(rng, config.compute_mean, config.compute_std)

            base_phase = self.library.pick(rng)
            delays = _per_rank_delays(rng, self.library.ranks, config.desync_mean)
            phase_requests = _instantiate_phase(base_phase, start=cursor, delays=delays)
            requests.extend(phase_requests)

            p_start = min(r.start for r in phase_requests)
            p_end = max(r.end for r in phase_requests)
            phases.append(
                IOPhase(start=p_start, end=p_end, nbytes=sum(r.nbytes for r in phase_requests))
            )
            cursor = p_end

        ground_truth = GroundTruth(phases=tuple(phases))
        trace = Trace.from_requests(
            requests,
            ground_truth=ground_truth,
            metadata={
                "application": "semi-synthetic",
                "iterations": config.iterations,
                "compute_mean": config.compute_mean,
                "compute_std": config.compute_std,
                "desync_mean": config.desync_mean,
                "noise": NoiseLevel(config.noise).value,
            },
        )
        if NoiseLevel(config.noise) is not NoiseLevel.NONE:
            trace = add_noise(trace, level=config.noise, seed=rng)
        return trace

    def generate_batch(
        self, config: SyntheticAppConfig, *, count: int, seed: SeedLike = None
    ) -> list[Trace]:
        """Generate ``count`` independent traces for one parameter combination."""
        check_positive_int(count, "count")
        rng = as_generator(seed)
        return [self.generate(config, seed=rng) for _ in range(count)]


# --------------------------------------------------------------------- #
# helpers
# --------------------------------------------------------------------- #
def _truncated_normal(rng: np.random.Generator, mean: float, std: float) -> float:
    """Draw from N(mean, std) truncated to positive values (Section III-A)."""
    if std == 0.0:
        return max(mean, 0.0)
    for _ in range(1000):
        value = float(rng.normal(mean, std))
        if value > 0.0:
            return value
    # Pathological parameters (mean << 0): fall back to a small positive value.
    return abs(float(rng.normal(mean, std))) + 1e-6


def _per_rank_delays(rng: np.random.Generator, ranks: int, mean: float) -> np.ndarray:
    """Exponential per-rank delays δ_k with δ_0 = 0."""
    delays = np.zeros(ranks)
    if mean > 0 and ranks > 1:
        delays[1:] = rng.exponential(mean, size=ranks - 1)
    return delays


def _instantiate_phase(
    base_phase: tuple[IORequest, ...],
    *,
    start: float,
    delays: np.ndarray,
) -> list[IORequest]:
    """Place a library phase at ``start`` and apply the per-rank delays."""
    origin = min(r.start for r in base_phase)
    placed: list[IORequest] = []
    for request in base_phase:
        delay = float(delays[request.rank]) if request.rank < len(delays) else 0.0
        offset = start - origin + delay
        placed.append(request.shifted(offset))
    return placed


def mean_period(trace: Trace) -> float:
    """Ground-truth average period T̄ of a generated trace (phase-start gaps)."""
    if trace.ground_truth is None:
        raise WorkloadError("trace carries no ground truth")
    period = trace.ground_truth.average_period()
    if period is None:
        raise WorkloadError("trace ground truth has fewer than two phases")
    return period
