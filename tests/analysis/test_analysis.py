"""Unit tests for the analysis harness: errors, sweeps, reports."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.error import detection_error, evaluate_trace
from repro.analysis.report import (
    format_boxplot,
    format_sweep,
    format_table,
    paper_comparison_table,
)
from repro.analysis.sweep import BoxplotStats, LimitationStudy, SweepPoint
from repro.core import FtioConfig
from repro.exceptions import WorkloadError
from repro.workloads.noise import NoiseLevel
from repro.workloads.synthetic import SyntheticAppConfig


class TestDetectionError:
    def test_relative_error(self):
        assert detection_error(110.0, 100.0) == pytest.approx(0.1)
        assert detection_error(100.0, 100.0) == pytest.approx(0.0)

    def test_missing_detection_counts_as_one(self):
        assert detection_error(None, 50.0) == 1.0
        assert detection_error(0.0, 50.0) == 1.0

    def test_invalid_true_period(self):
        with pytest.raises(ValueError):
            detection_error(10.0, 0.0)

    def test_evaluate_trace_on_periodic_ior(self, periodic_trace):
        outcome = evaluate_trace(periodic_trace, config=FtioConfig(sampling_frequency=1.0))
        assert outcome.detected
        assert outcome.error < 0.1
        assert outcome.true_period == pytest.approx(
            periodic_trace.ground_truth.average_period()
        )
        assert outcome.sigma_vol is not None

    def test_evaluate_trace_requires_ground_truth(self, simple_trace):
        with pytest.raises(WorkloadError):
            evaluate_trace(simple_trace)


class TestBoxplotStats:
    def test_quartiles(self):
        stats = BoxplotStats.from_values(np.arange(1, 101, dtype=float))
        assert stats.median == pytest.approx(50.5)
        assert stats.q1 == pytest.approx(25.75)
        assert stats.q3 == pytest.approx(75.25)
        assert stats.count == 100

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            BoxplotStats.from_values([])


@pytest.fixture(scope="module")
def tiny_study(small_phase_library):
    return LimitationStudy(
        library=small_phase_library, traces_per_point=3, sampling_frequency=1.0
    )


# Redefine the session fixture at module scope for this module's tiny study.
@pytest.fixture(scope="module")
def small_phase_library():
    from repro.constants import MIB
    from repro.workloads.synthetic import PhaseLibrary

    return PhaseLibrary.generate(
        n_phases=4,
        ranks=4,
        volume_per_rank=400 * MIB,
        request_size=8 * MIB,
        aggregate_bandwidth=200e6,
        seed=11,
    )


class TestLimitationStudy:
    def test_point_builders(self, tiny_study):
        ratio_points = tiny_study.phase_ratio_points(ratios=(0.5, 2.0), noise=NoiseLevel.LOW)
        assert len(ratio_points) == 2
        assert ratio_points[0].app_config.noise == NoiseLevel.LOW
        desync_points = tiny_study.desync_points(phis=(0.0, 5.0))
        assert desync_points[1].app_config.desync_mean == 5.0
        var_points = tiny_study.variability_points(sigma_over_mu=(0.0, 1.0))
        assert var_points[1].app_config.compute_std == pytest.approx(11.0)

    def test_run_point_produces_outcomes(self, tiny_study):
        point = SweepPoint(
            label="steady",
            value=0.0,
            app_config=SyntheticAppConfig(iterations=6, compute_mean=5.0),
        )
        result = tiny_study.run_point(point, seed=0)
        assert len(result.outcomes) == 3
        assert result.errors.shape == (3,)
        stats = result.error_stats()
        assert stats.count == 3
        assert 0.0 <= stats.median <= 1.0

    def test_errors_grow_with_variability(self, tiny_study):
        points = tiny_study.variability_points(sigma_over_mu=(0.0, 2.0), compute_mean=5.0)
        results = tiny_study.run(points, seed=1)
        steady, wobbly = results
        assert steady.error_stats().median <= wobbly.error_stats().median + 0.2

    def test_run_is_deterministic(self, tiny_study):
        point = SweepPoint(
            label="steady",
            value=0.0,
            app_config=SyntheticAppConfig(iterations=5, compute_mean=5.0),
        )
        a = tiny_study.run_point(point, seed=3)
        b = tiny_study.run_point(point, seed=3)
        assert np.allclose(a.errors, b.errors)


class TestReport:
    def test_format_table_alignment(self):
        table = format_table(["name", "value"], [["alpha", 1.23456], ["b", 7]])
        lines = table.splitlines()
        assert lines[0].startswith("name")
        assert "1.235" in table
        assert len(lines) == 4

    def test_format_boxplot(self):
        stats = BoxplotStats.from_values([0.1, 0.2, 0.3])
        text = format_boxplot(stats, as_percent=True)
        assert "%" in text
        assert "median" in text

    def test_format_sweep(self, tiny_study):
        point = SweepPoint(
            label="p", value=1.0, app_config=SyntheticAppConfig(iterations=5, compute_mean=5.0)
        )
        results = [tiny_study.run_point(point, seed=0)]
        for metric in ("error", "confidence", "sigma_vol"):
            text = format_sweep(results, metric=metric)
            assert "p" in text
            assert "median" in text.splitlines()[0]

    def test_paper_comparison_table(self):
        text = paper_comparison_table([("period", 111.67, 109.2), ("confidence", "60.5%", "62%")])
        assert "quantity" in text
        assert "111.7" in text
