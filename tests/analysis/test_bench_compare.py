"""Unit tests for the BENCH trend-line comparison used by CI."""

from __future__ import annotations

import json

from benchmarks.bench_compare import compare_reports, flatten, main


def report(**overrides) -> dict:
    base = {
        "schema_version": 2,
        "results": {
            "autocorrelation": {"100000": {"fft_seconds": 0.010, "speedup": 200.0}},
            "detect_offline": {"100000": {"seconds": 0.002}},
            "service": {
                "n_jobs": 100,
                "jobs_per_second": 500.0,
                "p99_detection_latency_seconds": 0.02,
            },
        },
    }
    flat = flatten(base)
    flat.update(overrides)
    # Rebuild the nested dict from the flattened overrides.
    rebuilt: dict = {}
    for path, value in flat.items():
        node = rebuilt
        parts = path.split(".")
        for part in parts[:-1]:
            node = node.setdefault(part, {})
        node[parts[-1]] = value
    return rebuilt


class TestCompareReports:
    def test_no_change_no_regressions(self):
        assert compare_reports(report(), report()) == []

    def test_slower_seconds_flagged(self):
        current = report(**{"results.detect_offline.100000.seconds": 0.2})
        regressions = compare_reports(report(), current, threshold=0.2)
        assert [r.metric for r in regressions] == ["results.detect_offline.100000.seconds"]
        assert regressions[0].change > 0.2

    def test_faster_seconds_not_flagged(self):
        current = report(**{"results.detect_offline.100000.seconds": 0.0001})
        assert compare_reports(report(), current) == []

    def test_dropped_throughput_flagged(self):
        current = report(**{"results.service.jobs_per_second": 100.0})
        regressions = compare_reports(report(), current)
        assert [r.metric for r in regressions] == ["results.service.jobs_per_second"]

    def test_dropped_speedup_flagged(self):
        current = report(**{"results.autocorrelation.100000.speedup": 50.0})
        regressions = compare_reports(report(), current)
        assert [r.metric for r in regressions] == ["results.autocorrelation.100000.speedup"]

    def test_counts_are_informational(self):
        current = report(**{"results.service.n_jobs": 9000})
        assert compare_reports(report(), current) == []

    def test_sub_millisecond_noise_ignored(self):
        previous = report(**{"results.detect_offline.100000.seconds": 0.0002})
        current = report(**{"results.detect_offline.100000.seconds": 0.0008})
        # 4x slower but far below the absolute noise floor: not flagged.
        assert compare_reports(previous, current) == []

    def test_new_metrics_without_history_are_skipped(self):
        previous = report()
        del previous["results"]["service"]
        assert compare_reports(previous, report()) == []


class TestMain:
    def test_main_is_non_blocking_and_warns(self, tmp_path, capsys):
        prev = tmp_path / "prev.json"
        cur = tmp_path / "cur.json"
        prev.write_text(json.dumps(report()))
        cur.write_text(json.dumps(report(**{"results.detect_offline.100000.seconds": 0.5})))
        assert main([str(prev), str(cur)]) == 0
        out = capsys.readouterr().out
        assert "::warning" in out
        assert "results.detect_offline.100000.seconds" in out

    def test_main_quiet_when_clean(self, tmp_path, capsys):
        prev = tmp_path / "prev.json"
        cur = tmp_path / "cur.json"
        prev.write_text(json.dumps(report()))
        cur.write_text(json.dumps(report()))
        assert main([str(prev), str(cur)]) == 0
        assert "::warning" not in capsys.readouterr().out
