"""Tests for the parallel execution backend of the limitation study."""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.analysis.sweep import LimitationStudy
from repro.workloads.synthetic import PhaseLibrary


@pytest.fixture(scope="module")
def small_study():
    return LimitationStudy(
        library=PhaseLibrary.generate(n_phases=6, seed=11), traces_per_point=2
    )


@pytest.fixture(scope="module")
def points(small_study):
    return small_study.variability_points(sigma_over_mu=(0.0, 0.5, 1.0), iterations=6)


def assert_results_identical(serial, parallel):
    assert len(serial) == len(parallel)
    for a, b in zip(serial, parallel):
        assert a.point == b.point
        assert np.array_equal(a.errors, b.errors)
        assert np.array_equal(a.confidences, b.confidences)
        for oa, ob in zip(a.outcomes, b.outcomes):
            assert oa.true_period == ob.true_period
            assert oa.detected_period == ob.detected_period
            assert oa.sigma_vol == ob.sigma_vol
            assert oa.sigma_time == ob.sigma_time


class TestParallelSweep:
    def test_parallel_matches_serial_bit_identical(self, small_study, points):
        serial = small_study.run(points, seed=3)
        parallel = small_study.run(points, seed=3, n_workers=4)
        assert_results_identical(serial, parallel)

    def test_instance_default_workers(self, points):
        study = LimitationStudy(
            library=PhaseLibrary.generate(n_phases=6, seed=11),
            traces_per_point=2,
            n_workers=2,
        )
        serial = study.run(points, seed=3, n_workers=1)
        parallel = study.run(points, seed=3)
        assert_results_identical(serial, parallel)

    def test_invalid_worker_count_rejected(self, small_study, points):
        with pytest.raises(ValueError):
            small_study.run(points, seed=3, n_workers=0)

    def test_single_point_stays_serial(self, small_study, points):
        # One point never pays the process-pool overhead, whatever n_workers is.
        [result] = small_study.run(points[:1], seed=3, n_workers=8)
        assert len(result.outcomes) == small_study.traces_per_point

    def test_study_roundtrips_through_pickle(self, small_study, points):
        clone = pickle.loads(pickle.dumps(small_study))
        a = small_study.run_point(points[0], seed=5)
        b = clone.run_point(points[0], seed=5)
        assert np.array_equal(a.errors, b.errors)
