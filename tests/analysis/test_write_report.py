"""Stability contract of ``write_report`` (BENCH_perf.json diff churn).

Reruns must produce minimal diffs: sorted keys, rounded floats, and noise
hysteresis for float measurements — while integer *facts* (counts,
cpu_count, schema versions) always follow the new run.
"""

from __future__ import annotations

import json

from repro.analysis.benchmark import NOISE_TOLERANCE, _stable_merge, write_report


class TestStableMerge:
    def test_float_within_noise_keeps_old_value(self):
        assert _stable_merge(0.0105, 0.0100, tolerance=NOISE_TOLERANCE) == 0.0100

    def test_float_beyond_noise_updates(self):
        assert _stable_merge(0.0200, 0.0100, tolerance=NOISE_TOLERANCE) == 0.0200

    def test_sub_millisecond_changes_are_always_noise(self):
        assert _stable_merge(9e-4, 1e-5, tolerance=NOISE_TOLERANCE) == 1e-5

    def test_integers_always_follow_the_new_run(self):
        # Counts are facts, not measurements: a 30% drop in n_detections or a
        # cpu_count change must never be frozen by the hysteresis.
        assert _stable_merge({"n_detections": 457}, {"n_detections": 358},
                             tolerance=NOISE_TOLERANCE) == {"n_detections": 457}
        assert _stable_merge({"cpu_count": 3}, {"cpu_count": 4},
                             tolerance=NOISE_TOLERANCE) == {"cpu_count": 3}

    def test_structure_follows_the_new_report(self):
        merged = _stable_merge(
            {"kept": 1.0, "added": 2.0}, {"kept": 1.0, "removed": 3.0},
            tolerance=NOISE_TOLERANCE,
        )
        assert merged == {"kept": 1.0, "added": 2.0}

    def test_sibling_floats_update_atomically(self):
        # Derived values live next to their inputs (speedup = direct/fft).
        # fft moved under the 1 ms absolute slack and direct moved beyond
        # tolerance: a field-by-field merge would keep the old fft next to
        # the new direct and speedup, writing speedup != direct/fft.  One
        # real move must refresh the whole group.
        old = {"direct_seconds": 0.026, "fft_seconds": 0.00095, "speedup": 27.4}
        new = {"direct_seconds": 0.016, "fft_seconds": 0.00054, "speedup": 29.6}
        assert _stable_merge(new, old, tolerance=NOISE_TOLERANCE) == new

    def test_whole_group_within_noise_keeps_old_floats(self):
        old = {"direct_seconds": 0.026, "fft_seconds": 0.00095, "speedup": 27.4}
        new = {"direct_seconds": 0.028, "fft_seconds": 0.00101, "speedup": 27.7}
        assert _stable_merge(new, old, tolerance=NOISE_TOLERANCE) == old

    def test_sub_dicts_are_independent_groups(self):
        # A real move in one benchmark section must not drag a neighbouring
        # section's stable measurements along with it.
        old = {"acf": {"seconds": 0.5}, "rec": {"seconds": 0.5}}
        new = {"acf": {"seconds": 2.0}, "rec": {"seconds": 0.52}}
        merged = _stable_merge(new, old, tolerance=NOISE_TOLERANCE)
        assert merged == {"acf": {"seconds": 2.0}, "rec": {"seconds": 0.5}}

    def test_float_list_within_noise_keeps_old_group(self):
        # Float lists are measurements too: a list that only wobbled within
        # noise used to follow the new run unconditionally, refreshing the
        # group (and the generated_at stamp) on every rerun.
        old = {"seconds": 0.5, "samples": [0.10, 0.20, 0.40]}
        new = {"seconds": 0.52, "samples": [0.11, 0.21, 0.42]}
        assert _stable_merge(new, old, tolerance=NOISE_TOLERANCE) == old

    def test_float_list_real_move_refreshes_whole_group(self):
        old = {"seconds": 0.5, "samples": [0.10, 0.20, 0.40]}
        new = {"seconds": 0.52, "samples": [0.10, 0.20, 4.00]}
        assert _stable_merge(new, old, tolerance=NOISE_TOLERANCE) == new

    def test_float_list_length_change_refreshes_group(self):
        # A resized list is a structural change, never hysteresis material.
        old = {"samples": [0.10, 0.20]}
        new = {"samples": [0.10, 0.20, 0.30]}
        assert _stable_merge(new, old, tolerance=NOISE_TOLERANCE) == new

    def test_int_lists_always_follow_the_new_run(self):
        # Lists of ints are facts (signal sizes, shard counts), not noisy
        # measurements — they must never be frozen.
        old = {"sizes": [128, 256]}
        new = {"sizes": [128, 512]}
        assert _stable_merge(new, old, tolerance=NOISE_TOLERANCE) == new


class TestWriteReport:
    @staticmethod
    def report(*, stamp: int, seconds: float, count: int) -> dict:
        return {
            "schema_version": 4,
            "generated_at": stamp,
            "results": {"kernel": {"seconds": seconds, "count": count}},
        }

    def test_unchanged_rerun_is_byte_identical(self, tmp_path):
        path = tmp_path / "bench.json"
        write_report(self.report(stamp=100, seconds=0.5, count=7), path)
        first = path.read_bytes()
        # Same measurements within noise, later timestamp: nothing rewritten.
        write_report(self.report(stamp=200, seconds=0.55, count=7), path)
        assert path.read_bytes() == first

    def test_real_change_updates_value_and_stamp(self, tmp_path):
        path = tmp_path / "bench.json"
        write_report(self.report(stamp=100, seconds=0.5, count=7), path)
        write_report(self.report(stamp=200, seconds=2.0, count=7), path)
        loaded = json.loads(path.read_text())
        assert loaded["results"]["kernel"]["seconds"] == 2.0
        assert loaded["generated_at"] == 200

    def test_count_change_alone_updates_the_file(self, tmp_path):
        path = tmp_path / "bench.json"
        write_report(self.report(stamp=100, seconds=0.5, count=7), path)
        write_report(self.report(stamp=200, seconds=0.5, count=9), path)
        assert json.loads(path.read_text())["results"]["kernel"]["count"] == 9

    def test_rerun_with_float_list_keeps_old_stamp(self, tmp_path):
        # Regression: a group with a float-list sibling (e.g. the autoscale
        # ramp's tick_seconds) within noise must leave the file — stamp
        # included — byte-identical instead of rewriting generated_at on
        # every rerun.
        def report(stamp: int, *, jitter: float) -> dict:
            return {
                "schema_version": 4,
                "generated_at": stamp,
                "results": {
                    "ramp": {
                        "seconds": 0.5 + jitter,
                        "tick_seconds": [0.1 + jitter, 0.2 + jitter],
                    }
                },
            }

        path = tmp_path / "bench.json"
        write_report(report(100, jitter=0.0), path)
        first = path.read_bytes()
        write_report(report(200, jitter=0.01), path)
        assert path.read_bytes() == first
        assert json.loads(path.read_text())["generated_at"] == 100

    def test_real_list_move_updates_values_and_stamp(self, tmp_path):
        path = tmp_path / "bench.json"
        write_report(
            {"generated_at": 100, "r": {"s": 0.5, "ticks": [0.1, 0.2]}}, path
        )
        write_report(
            {"generated_at": 200, "r": {"s": 0.5, "ticks": [0.1, 2.0]}}, path
        )
        loaded = json.loads(path.read_text())
        assert loaded["r"]["ticks"] == [0.1, 2.0]
        assert loaded["generated_at"] == 200

    def test_floats_are_rounded_and_keys_sorted(self, tmp_path):
        path = tmp_path / "bench.json"
        write_report({"b": 0.123456789123, "a": 1}, path)
        text = path.read_text()
        assert json.loads(text) == {"a": 1, "b": 0.123457}
        assert text.index('"a"') < text.index('"b"')