"""Unit tests for the cluster substrate: jobs, file system, simulator."""

from __future__ import annotations

import pytest

from repro.cluster.filesystem import SharedFileSystem
from repro.cluster.job import JobPhase, JobSpec, JobState
from repro.cluster.simulator import ClusterSimulator, run_isolated
from repro.exceptions import SchedulingError
from repro.scheduling.baseline import ExclusiveFcfsScheduler, FairShareScheduler


def make_spec(name="job", period=100.0, io_fraction=0.1, iterations=3, bandwidth=1e9, start=0.0):
    return JobSpec(
        name=name,
        period=period,
        io_fraction=io_fraction,
        iterations=iterations,
        io_bandwidth=bandwidth,
        start_time=start,
    )


class TestJobSpec:
    def test_derived_quantities(self):
        spec = make_spec(period=100.0, io_fraction=0.1, iterations=4, bandwidth=1e9)
        assert spec.compute_time == pytest.approx(90.0)
        assert spec.io_time_isolated == pytest.approx(10.0)
        assert spec.io_volume == pytest.approx(1e10)
        assert spec.isolated_makespan == pytest.approx(400.0)
        assert spec.isolated_io_time == pytest.approx(40.0)

    def test_invalid_io_fraction(self):
        with pytest.raises(SchedulingError):
            make_spec(io_fraction=0.0)
        with pytest.raises(SchedulingError):
            make_spec(io_fraction=1.0)


class TestJobState:
    def test_lifecycle(self):
        state = JobState(spec=make_spec(iterations=2))
        state.start(0.0)
        assert state.phase is JobPhase.COMPUTING
        state.remaining_compute = 0.0
        state.begin_io(90.0)
        assert state.phase is JobPhase.IO
        record = state.complete_io(100.0)
        assert record.duration == pytest.approx(10.0)
        assert state.phase is JobPhase.COMPUTING
        state.begin_io(190.0)
        state.complete_io(200.0)
        assert state.phase is JobPhase.FINISHED
        assert state.makespan == pytest.approx(200.0)
        assert state.total_io_time == pytest.approx(20.0)

    def test_invalid_transitions(self):
        state = JobState(spec=make_spec())
        with pytest.raises(SchedulingError):
            state.begin_io(0.0)
        state.start(0.0)
        with pytest.raises(SchedulingError):
            state.complete_io(1.0)
        with pytest.raises(SchedulingError):
            state.start(1.0)


class TestSharedFileSystem:
    def test_effective_bandwidth_capped_by_job(self):
        fs = SharedFileSystem(capacity=10e9)
        assert fs.effective_bandwidth(1.0, 4e9) == pytest.approx(4e9)
        assert fs.effective_bandwidth(0.2, 4e9) == pytest.approx(2e9)

    def test_invalid_share(self):
        fs = SharedFileSystem(capacity=1e9)
        with pytest.raises(SchedulingError):
            fs.effective_bandwidth(1.5, 1e9)

    def test_allocation_validation(self):
        fs = SharedFileSystem(capacity=1e9)
        fs.validate_allocation({"a": 0.5, "b": 0.5})
        with pytest.raises(SchedulingError):
            fs.validate_allocation({"a": 0.9, "b": 0.9})
        with pytest.raises(SchedulingError):
            fs.validate_allocation({"a": -0.1})


class TestClusterSimulator:
    def test_isolated_job_matches_analytic_makespan(self):
        fs = SharedFileSystem(capacity=2e9)
        spec = make_spec(period=100.0, io_fraction=0.1, iterations=3, bandwidth=1e9)
        result = run_isolated(spec, fs)
        assert result.makespan == pytest.approx(spec.isolated_makespan, rel=1e-6)
        assert result.total_io_time == pytest.approx(spec.isolated_io_time, rel=1e-6)
        assert result.stretch == pytest.approx(1.0, rel=1e-6)
        assert result.io_slowdown == pytest.approx(1.0, rel=1e-6)

    def test_contention_slows_io_with_fair_share(self):
        fs = SharedFileSystem(capacity=1e9)
        # Two identical jobs that always overlap: each gets half the bandwidth.
        jobs = [
            make_spec(name="a", period=100.0, io_fraction=0.5, iterations=2, bandwidth=1e9),
            make_spec(name="b", period=100.0, io_fraction=0.5, iterations=2, bandwidth=1e9),
        ]
        result = ClusterSimulator(fs, FairShareScheduler(), jobs).run()
        for job in result.jobs:
            assert job.io_slowdown > 1.5
            assert job.makespan > job.spec.isolated_makespan

    def test_exclusive_scheduler_serializes(self):
        fs = SharedFileSystem(capacity=1e9)
        jobs = [
            make_spec(name="a", period=10.0, io_fraction=0.5, iterations=1, bandwidth=1e9),
            make_spec(name="b", period=10.0, io_fraction=0.5, iterations=1, bandwidth=1e9),
        ]
        result = ClusterSimulator(fs, ExclusiveFcfsScheduler(), jobs).run()
        # One of the two jobs waits for the other's 5 s I/O phase.
        makespans = sorted(j.makespan for j in result.jobs)
        assert makespans[0] == pytest.approx(10.0, rel=1e-6)
        assert makespans[1] == pytest.approx(15.0, rel=1e-6)

    def test_phase_observer_called(self):
        fs = SharedFileSystem(capacity=1e9)
        seen = []
        sim = ClusterSimulator(
            fs,
            FairShareScheduler(),
            [make_spec(name="a", iterations=3)],
            phase_observers=[lambda job, record, time: seen.append((job.name, record.iteration))],
        )
        sim.run()
        assert seen == [("a", 0), ("a", 1), ("a", 2)]

    def test_start_time_offsets_release(self):
        fs = SharedFileSystem(capacity=1e9)
        spec = make_spec(name="late", iterations=1, start=50.0)
        result = ClusterSimulator(fs, FairShareScheduler(), [spec]).run()
        job = result.job("late")
        assert result.end_time == pytest.approx(50.0 + spec.isolated_makespan, rel=1e-6)
        assert job.makespan == pytest.approx(spec.isolated_makespan, rel=1e-6)

    def test_duplicate_names_rejected(self):
        fs = SharedFileSystem(capacity=1e9)
        with pytest.raises(SchedulingError):
            ClusterSimulator(fs, FairShareScheduler(), [make_spec(name="x"), make_spec(name="x")])

    def test_no_jobs_rejected(self):
        with pytest.raises(SchedulingError):
            ClusterSimulator(SharedFileSystem(capacity=1e9), FairShareScheduler(), [])

    def test_utilization_definition(self):
        fs = SharedFileSystem(capacity=1e9)
        spec = make_spec(period=100.0, io_fraction=0.25, iterations=2)
        result = ClusterSimulator(fs, FairShareScheduler(), [spec]).run()
        assert result.utilization == pytest.approx(0.75, rel=1e-6)

    def test_unknown_job_lookup(self):
        fs = SharedFileSystem(capacity=1e9)
        result = ClusterSimulator(fs, FairShareScheduler(), [make_spec(name="a")]).run()
        with pytest.raises(KeyError):
            result.job("nope")
