"""Shared fixtures of the test suite.

Expensive artefacts (workload traces, phase libraries) are built once per
session and reused; everything is seeded so the suite is deterministic.
"""

from __future__ import annotations

import sys
from pathlib import Path

import numpy as np
import pytest

# Allow running the tests from a source checkout without installation.
_SRC = Path(__file__).resolve().parent.parent / "src"
if _SRC.exists() and str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.constants import MIB  # noqa: E402
from repro.core import Ftio, FtioConfig  # noqa: E402
from repro.trace.record import IOKind, IORequest  # noqa: E402
from repro.trace.trace import Trace  # noqa: E402
from repro.workloads.ior import ior_trace  # noqa: E402
from repro.workloads.synthetic import PhaseLibrary, SemiSyntheticGenerator  # noqa: E402


@pytest.fixture(scope="session")
def rng() -> np.random.Generator:
    """Session RNG for tests that only need a stream of random numbers."""
    return np.random.default_rng(12345)


@pytest.fixture
def simple_requests() -> list[IORequest]:
    """A small hand-written set of requests covering both ranks and kinds."""
    return [
        IORequest(rank=0, start=0.0, end=1.0, nbytes=100 * MIB, kind=IOKind.WRITE),
        IORequest(rank=1, start=0.5, end=1.5, nbytes=100 * MIB, kind=IOKind.WRITE),
        IORequest(rank=0, start=3.0, end=4.0, nbytes=50 * MIB, kind=IOKind.WRITE),
        IORequest(rank=1, start=3.0, end=3.5, nbytes=10 * MIB, kind=IOKind.READ),
    ]


@pytest.fixture
def simple_trace(simple_requests: list[IORequest]) -> Trace:
    """Trace built from :func:`simple_requests`."""
    return Trace.from_requests(simple_requests, metadata={"application": "unit-test"})


@pytest.fixture(scope="session")
def periodic_trace() -> Trace:
    """A clearly periodic IOR-like trace (period ≈ 100 s, 8 phases)."""
    return ior_trace(ranks=8, iterations=8, compute_time=90.0, seed=7)


@pytest.fixture(scope="session")
def periodic_result(periodic_trace: Trace):
    """FTIO result on :func:`periodic_trace` at fs = 1 Hz."""
    return Ftio(FtioConfig(sampling_frequency=1.0)).detect(periodic_trace)


@pytest.fixture(scope="session")
def small_phase_library() -> PhaseLibrary:
    """A down-scaled phase library so semi-synthetic tests stay fast."""
    return PhaseLibrary.generate(
        n_phases=6,
        ranks=4,
        volume_per_rank=400 * MIB,
        request_size=8 * MIB,
        aggregate_bandwidth=200e6,
        seed=11,
    )


@pytest.fixture(scope="session")
def small_generator(small_phase_library: PhaseLibrary) -> SemiSyntheticGenerator:
    """Semi-synthetic generator over the small phase library."""
    return SemiSyntheticGenerator(library=small_phase_library)


def make_square_wave(
    *,
    period: float,
    duty: float,
    n_periods: int,
    fs: float,
    high: float = 1e9,
    low: float = 0.0,
) -> np.ndarray:
    """Synthesize an ideal square-wave bandwidth signal for spectral tests."""
    n = int(round(period * n_periods * fs))
    t = np.arange(n) / fs
    phase = np.mod(t, period)
    return np.where(phase < duty * period, high, low)
