"""Unit tests for the characterization metrics (sigma_vol, sigma_time, R_IO, B_IO)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.characterization import (
    characterize,
    substantial_io_threshold,
    time_ratio_and_bandwidth,
)
from repro.exceptions import AnalysisError
from repro.trace.sampling import DiscreteSignal
from tests.conftest import make_square_wave


def square_signal(period=10.0, duty=0.4, n_periods=10, fs=2.0, high=1e9) -> DiscreteSignal:
    samples = make_square_wave(period=period, duty=duty, n_periods=n_periods, fs=fs, high=high)
    return DiscreteSignal(samples=samples, sampling_frequency=fs)


class TestThresholdAndRatio:
    def test_threshold_is_mean_bandwidth(self):
        signal = square_signal(duty=0.5)
        assert substantial_io_threshold(signal) == pytest.approx(signal.samples.mean())

    def test_time_ratio_matches_duty_cycle(self):
        signal = square_signal(duty=0.3)
        r_io, b_io, threshold = time_ratio_and_bandwidth(signal)
        assert r_io == pytest.approx(0.3, abs=0.05)
        assert b_io == pytest.approx(1e9, rel=1e-6)
        assert 0 < threshold < 1e9

    def test_constant_signal_has_zero_ratio(self):
        signal = DiscreteSignal(samples=np.full(100, 5.0), sampling_frequency=1.0)
        r_io, b_io, _ = time_ratio_and_bandwidth(signal)
        # Nothing exceeds the mean of a constant signal.
        assert r_io == 0.0
        assert b_io == 0.0


class TestCharacterize:
    def test_ideal_periodic_signal(self):
        signal = square_signal(period=10.0, duty=0.4, n_periods=20)
        result = characterize(signal, dominant_frequency=0.1)
        assert result.sigma_vol == pytest.approx(0.0, abs=0.02)
        assert result.sigma_time == pytest.approx(0.0, abs=0.02)
        assert result.time_ratio == pytest.approx(0.4, abs=0.05)
        assert result.periodicity_score > 0.95
        assert result.io_bandwidth == pytest.approx(1e9, rel=1e-6)

    def test_volume_variation_increases_sigma_vol(self):
        fs, period = 2.0, 10.0
        base = make_square_wave(period=period, duty=0.4, n_periods=10, fs=fs)
        varied = base.copy()
        # Halve the amplitude of every other period.
        samples_per_period = int(period * fs)
        for i in range(0, 10, 2):
            varied[i * samples_per_period : (i + 1) * samples_per_period] *= 0.3
        uniform = characterize(DiscreteSignal(samples=base, sampling_frequency=fs), 0.1)
        wobbly = characterize(DiscreteSignal(samples=varied, sampling_frequency=fs), 0.1)
        assert wobbly.sigma_vol > uniform.sigma_vol

    def test_time_variation_increases_sigma_time(self):
        fs, period = 2.0, 10.0
        samples_per_period = int(period * fs)
        pieces = []
        for i in range(10):
            duty = 0.2 if i % 2 == 0 else 0.8
            piece = make_square_wave(period=period, duty=duty, n_periods=1, fs=fs)
            pieces.append(piece[:samples_per_period])
        jittery = np.concatenate(pieces)
        steady = make_square_wave(period=period, duty=0.5, n_periods=10, fs=fs)
        r_jittery = characterize(DiscreteSignal(samples=jittery, sampling_frequency=fs), 0.1)
        r_steady = characterize(DiscreteSignal(samples=steady, sampling_frequency=fs), 0.1)
        assert r_jittery.sigma_time > r_steady.sigma_time

    def test_bytes_per_period(self):
        signal = square_signal(period=10.0, duty=0.5, n_periods=10, fs=2.0, high=100.0)
        result = characterize(signal, dominant_frequency=0.1)
        # Each period transfers ~ 100 B/s * 5 s of substantial I/O.
        assert result.bytes_per_period == pytest.approx(500.0, rel=0.1)

    def test_period_below_resolution_rejected(self):
        signal = square_signal(fs=1.0)
        with pytest.raises(AnalysisError):
            characterize(signal, dominant_frequency=10.0)

    def test_signal_shorter_than_period_rejected(self):
        signal = DiscreteSignal(samples=np.ones(5), sampling_frequency=1.0)
        with pytest.raises(AnalysisError):
            characterize(signal, dominant_frequency=0.01)

    def test_invalid_frequency_rejected(self):
        with pytest.raises(Exception):
            characterize(square_signal(), dominant_frequency=0.0)

    def test_score_within_bounds(self, periodic_result):
        characterization = periodic_result.characterization
        assert characterization is not None
        assert 0.0 <= characterization.periodicity_score <= 1.0
        assert 0.0 <= characterization.time_ratio <= 1.0
