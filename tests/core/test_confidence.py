"""Unit tests for the confidence metrics (Section II-C formulas)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.confidence import (
    candidate_confidence,
    confidence_index_sets,
    refined_confidence,
)


class TestIndexSets:
    def test_single_outlier(self):
        scores = np.array([0.1, 0.2, 8.0, 0.3])
        i1, i2 = confidence_index_sets(scores)
        assert i1.tolist() == [2]
        assert i2.tolist() == [2]

    def test_tolerance_widens_i2(self):
        scores = np.array([0.1, 4.0, 5.0])
        i1, i2 = confidence_index_sets(scores, tolerance=0.5)
        assert set(i1.tolist()) == {1, 2}
        assert set(i2.tolist()) == {1, 2}
        _, i2_strict = confidence_index_sets(scores, tolerance=0.9)
        assert i2_strict.tolist() == [2]

    def test_no_outliers(self):
        i1, i2 = confidence_index_sets(np.array([0.1, 0.2, 0.3]))
        assert i1.size == 0
        assert i2.size > 0  # tolerance set is relative to the max

    def test_empty_and_flat_input(self):
        i1, i2 = confidence_index_sets(np.zeros(0))
        assert i1.size == 0 and i2.size == 0
        i1, i2 = confidence_index_sets(np.zeros(5))
        assert i1.size == 0 and i2.size == 0


class TestCandidateConfidence:
    def test_single_candidate_has_full_confidence(self):
        scores = np.array([0.0, 0.1, 9.0, 0.2])
        assert candidate_confidence(2, scores) == pytest.approx(1.0)

    def test_two_equal_candidates_split_confidence(self):
        scores = np.array([0.0, 6.0, 6.0, 0.0])
        c1 = candidate_confidence(1, scores)
        c2 = candidate_confidence(2, scores)
        assert c1 == pytest.approx(0.5)
        assert c2 == pytest.approx(0.5)

    def test_matches_paper_formula(self):
        scores = np.array([1.0, 5.0, 4.0, 3.5, 0.5])
        # I1 = {1, 2, 3} (z >= 3); I2 with tolerance 0.8 = {1, 2} (z/zmax >= 0.8).
        z = scores
        expected = 0.5 * (z[1] / (z[1] + z[2] + z[3]) + z[1] / (z[1] + z[2]))
        assert candidate_confidence(1, scores) == pytest.approx(expected)

    def test_out_of_range_index(self):
        with pytest.raises(IndexError):
            candidate_confidence(10, np.array([1.0, 2.0]))

    def test_degenerate_flat_scores(self):
        assert candidate_confidence(0, np.zeros(4)) == pytest.approx(0.0)


class TestRefinedConfidence:
    def test_average_of_three(self):
        assert refined_confidence(0.6, 0.9, 0.9) == pytest.approx(0.8)

    def test_paper_example_values(self):
        # Section II-C: (62.5 % + 99.58 % + 97.6 %) / 3 ≈ 86.5 %.
        assert refined_confidence(0.625, 0.9958, 0.976) == pytest.approx(0.865, abs=0.005)

    def test_clipping(self):
        assert refined_confidence(1.5, 1.0, 1.0) == pytest.approx(1.0)
        assert refined_confidence(-0.5, 0.0, 0.0) == pytest.approx(0.0)
