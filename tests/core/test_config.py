"""Unit tests for FtioConfig validation."""

from __future__ import annotations

import pytest

from repro.core.config import FtioConfig
from repro.exceptions import ConfigurationError


class TestFtioConfig:
    def test_defaults_match_paper(self):
        config = FtioConfig()
        assert config.sampling_frequency == pytest.approx(10.0)
        assert config.tolerance == pytest.approx(0.8)
        assert config.zscore_threshold == pytest.approx(3.0)
        assert config.outlier_method == "zscore"
        assert config.use_autocorrelation is True

    def test_with_updates_returns_new_instance(self):
        config = FtioConfig()
        updated = config.with_updates(sampling_frequency=1.0, tolerance=0.45)
        assert updated.sampling_frequency == 1.0
        assert updated.tolerance == 0.45
        assert config.sampling_frequency == 10.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"sampling_frequency": 0.0},
            {"sampling_frequency": -1.0},
            {"tolerance": 1.5},
            {"zscore_threshold": 0.0},
            {"outlier_method": "nonsense"},
            {"io_kind": "append"},
            {"sampling_mode": "interpolate"},
            {"window": (10.0, 5.0)},
            {"acf_peak_threshold": 2.0},
            {"harmonic_tolerance": 0.9},
            {"online_window_hits": 0},
        ],
    )
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            FtioConfig(**kwargs)

    def test_all_outlier_methods_accepted(self):
        for method in ("zscore", "dbscan", "isolation_forest", "lof", "find_peaks"):
            assert FtioConfig(outlier_method=method).outlier_method == method

    def test_io_kind_none_allowed(self):
        assert FtioConfig(io_kind=None).io_kind is None
