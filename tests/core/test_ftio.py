"""Unit and integration tests for the FTIO detection pipeline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import Ftio, FtioConfig, Periodicity, detect
from repro.trace.sampling import DiscreteSignal
from repro.trace.bandwidth import bandwidth_signal
from repro.workloads.ior import ior_trace
from repro.workloads.nek5000 import nek5000_heatmap
from tests.conftest import make_square_wave


class TestDetectOnTraces:
    def test_periodic_trace_detected(self, periodic_trace, periodic_result):
        true_period = periodic_trace.ground_truth.average_period()
        assert periodic_result.is_periodic
        assert periodic_result.period == pytest.approx(true_period, rel=0.1)
        assert 0.0 < periodic_result.confidence <= 1.0
        assert periodic_result.analysis_time >= 0.0

    def test_refined_confidence_present_with_autocorrelation(self, periodic_result):
        assert periodic_result.refined_confidence is not None
        assert periodic_result.best_confidence == periodic_result.refined_confidence

    def test_disable_autocorrelation(self, periodic_trace):
        result = Ftio(FtioConfig(sampling_frequency=1.0, use_autocorrelation=False)).detect(
            periodic_trace
        )
        assert result.autocorrelation is None
        assert result.refined_confidence is None
        assert result.best_confidence == result.confidence

    def test_convenience_function(self, periodic_trace):
        result = detect(periodic_trace, sampling_frequency=1.0, use_autocorrelation=False)
        assert result.is_periodic

    def test_window_restriction(self, periodic_trace):
        full = Ftio(FtioConfig(sampling_frequency=1.0)).detect(periodic_trace)
        half = Ftio(FtioConfig(sampling_frequency=1.0)).detect(
            periodic_trace, window=(periodic_trace.t_start, periodic_trace.t_start + 400.0)
        )
        assert half.signal.n_samples < full.signal.n_samples

    def test_detect_accepts_bandwidth_signal_and_discrete_signal(self, periodic_trace):
        ftio = Ftio(FtioConfig(sampling_frequency=1.0))
        from_trace = ftio.detect(periodic_trace)
        from_signal = ftio.detect(bandwidth_signal(periodic_trace))
        from_discrete = ftio.detect(from_trace.signal)
        assert from_signal.period == pytest.approx(from_trace.period, rel=1e-6)
        assert from_discrete.period == pytest.approx(from_trace.period, rel=1e-6)

    def test_detect_accepts_heatmap(self):
        heatmap = nek5000_heatmap(seed=0)
        result = Ftio().detect(heatmap, window=(0.0, 56_000.0))
        assert result.is_periodic
        assert result.period == pytest.approx(4642.0, rel=0.1)

    def test_unsupported_source_rejected(self):
        with pytest.raises(TypeError):
            Ftio().detect([1, 2, 3])

    def test_metadata_propagated(self, periodic_result):
        assert periodic_result.metadata["trace_metadata"]["application"] == "ior"
        assert periodic_result.metadata["outlier_method"] == "zscore"


class TestCandidateRules:
    def make_signal(self, samples: np.ndarray, fs: float = 1.0) -> DiscreteSignal:
        return DiscreteSignal(samples=samples, sampling_frequency=fs)

    def test_square_wave_single_candidate(self):
        samples = make_square_wave(period=20.0, duty=0.5, n_periods=15, fs=1.0)
        result = Ftio(FtioConfig(sampling_frequency=1.0, use_autocorrelation=False)).analyze_signal(
            self.make_signal(samples)
        )
        assert result.periodicity in (Periodicity.PERIODIC, Periodicity.PERIODIC_WITH_VARIATION)
        assert result.period == pytest.approx(20.0, rel=0.05)

    def test_harmonics_are_ignored(self):
        # A bursty square wave has strong harmonics at integer multiples of the
        # fundamental; they must not switch the verdict to "not periodic".
        samples = make_square_wave(period=50.0, duty=0.1, n_periods=12, fs=1.0)
        result = Ftio(FtioConfig(sampling_frequency=1.0, use_autocorrelation=False)).analyze_signal(
            self.make_signal(samples)
        )
        assert result.is_periodic
        assert result.period == pytest.approx(50.0, rel=0.05)
        assert any(c.is_harmonic for c in result.candidates)

    def test_white_noise_has_no_confident_period(self):
        # White noise has no true period.  The DFT of noise can still produce a
        # spurious outlier bin (a known property the paper's confidence metric
        # is designed to expose), so the verdict is either "not periodic" or a
        # low-confidence detection — never a confident period.
        rng = np.random.default_rng(123)
        samples = rng.random(600) * 1e6
        result = Ftio(FtioConfig(sampling_frequency=1.0, use_autocorrelation=False)).analyze_signal(
            self.make_signal(samples)
        )
        if result.periodicity is Periodicity.NOT_PERIODIC:
            assert result.dominant_frequency is None
            assert result.period is None
        else:
            assert result.confidence < 0.6

    def test_flat_signal_is_not_periodic(self):
        samples = np.full(400, 2.5e6)
        result = Ftio(FtioConfig(sampling_frequency=1.0, use_autocorrelation=False)).analyze_signal(
            self.make_signal(samples)
        )
        assert result.periodicity is Periodicity.NOT_PERIODIC
        assert result.dominant_frequency is None

    def test_two_close_frequencies_periodic_with_variation(self):
        fs, n = 1.0, 600
        t = np.arange(n) / fs
        samples = (
            1e6
            + 5e5 * np.cos(2 * np.pi * 0.05 * t)
            + 4.9e5 * np.cos(2 * np.pi * 0.06 * t)
        )
        result = Ftio(FtioConfig(sampling_frequency=fs, use_autocorrelation=False)).analyze_signal(
            self.make_signal(samples)
        )
        assert result.periodicity is Periodicity.PERIODIC_WITH_VARIATION
        assert len(result.active_candidates()) == 2
        # The dominant one is the candidate with the larger power.
        assert result.dominant_frequency == pytest.approx(0.05, abs=0.005)

    def test_summary_strings(self, periodic_result):
        text = periodic_result.summary()
        assert "period" in text
        flat = Ftio(FtioConfig(sampling_frequency=1.0, use_autocorrelation=False)).analyze_signal(
            self.make_signal(np.full(300, 1e6))
        )
        assert "not periodic" in flat.summary()


class TestSkipFirstPhase:
    def test_skip_first_phase_drops_leading_burst(self):
        trace = ior_trace(ranks=4, iterations=6, compute_time=50.0, seed=3)
        config = FtioConfig(sampling_frequency=1.0, skip_first_phase=True, use_autocorrelation=False)
        skipped = Ftio(config).detect(trace)
        full = Ftio(config.with_updates(skip_first_phase=False)).detect(trace)
        assert skipped.signal.n_samples < full.signal.n_samples
        assert skipped.is_periodic

    def test_all_outlier_methods_agree_on_clean_signal(self, periodic_trace):
        periods = {}
        for method in ("zscore", "dbscan", "find_peaks", "lof"):
            config = FtioConfig(
                sampling_frequency=1.0, outlier_method=method, use_autocorrelation=False
            )
            result = Ftio(config).detect(periodic_trace)
            assert result.is_periodic, f"{method} failed to detect the period"
            periods[method] = result.period
        values = list(periods.values())
        assert max(values) - min(values) < 0.1 * values[0]
