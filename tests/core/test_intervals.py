"""Unit tests for frequency-interval merging (online prediction enhancement 2)."""

from __future__ import annotations

import pytest

from repro.core.intervals import (
    FrequencyInterval,
    merge_predictions,
    most_probable_interval,
    resolution_eps,
)


class TestFrequencyInterval:
    def test_center_and_period_range(self):
        interval = FrequencyInterval(low=0.1, high=0.2, probability=0.5, count=2)
        assert interval.center == pytest.approx(0.15)
        low_p, high_p = interval.period_range
        assert low_p == pytest.approx(5.0)
        assert high_p == pytest.approx(10.0)

    def test_contains(self):
        interval = FrequencyInterval(low=0.1, high=0.2, probability=1.0, count=1)
        assert interval.contains(0.15)
        assert not interval.contains(0.25)
        assert interval.contains(0.25, slack=0.1)

    def test_invalid_bounds(self):
        with pytest.raises(ValueError):
            FrequencyInterval(low=0.2, high=0.1, probability=1.0, count=1)


class TestResolutionEps:
    def test_identical_windows_use_resolution(self):
        assert resolution_eps([100.0, 100.0]) == pytest.approx(0.01)

    def test_different_windows_use_spread(self):
        eps = resolution_eps([50.0, 200.0])
        assert eps == pytest.approx(1 / 50 - 1 / 200)

    def test_empty_windows(self):
        assert resolution_eps([]) > 0


class TestMergePredictions:
    def test_close_predictions_merge_into_one_interval(self):
        freqs = [0.100, 0.101, 0.102, 0.099]
        intervals = merge_predictions(freqs, [100.0] * 4)
        assert len(intervals) == 1
        assert intervals[0].probability == pytest.approx(1.0)
        assert intervals[0].count == 4
        assert intervals[0].low <= 0.099 and intervals[0].high >= 0.102

    def test_two_groups_split_probability(self):
        freqs = [0.1, 0.1, 0.1, 0.5]
        intervals = merge_predictions(freqs, [100.0] * 4, eps=0.05)
        assert len(intervals) == 2
        assert intervals[0].probability == pytest.approx(0.75)
        assert intervals[1].probability == pytest.approx(0.25)
        assert sum(i.probability for i in intervals) == pytest.approx(1.0)

    def test_most_probable_interval(self):
        freqs = [0.1, 0.1, 0.5]
        intervals = merge_predictions(freqs, [100.0] * 3, eps=0.05)
        best = most_probable_interval(intervals)
        assert best is not None
        assert best.contains(0.1)

    def test_empty_input(self):
        assert merge_predictions([], []) == []
        assert most_probable_interval([]) is None

    def test_none_predictions_are_dropped(self):
        intervals = merge_predictions([0.1, None, 0.1], [100.0, 100.0, 100.0])
        assert len(intervals) == 1
        assert intervals[0].count == 2

    def test_noise_points_become_singletons(self):
        freqs = [0.1, 0.100001, 3.0]
        intervals = merge_predictions(freqs, [1000.0] * 3, eps=0.01, min_samples=2)
        probabilities = sorted(i.probability for i in intervals)
        assert probabilities == pytest.approx([1 / 3, 2 / 3])
