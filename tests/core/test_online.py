"""Unit and integration tests for the online prediction mode."""

from __future__ import annotations

import pytest

from repro.core import FtioConfig, OnlinePredictor
from repro.core.online import predict_from_file, predict_from_flushes, replay_online
from repro.exceptions import AnalysisError
from repro.trace import jsonl
from repro.trace.trace import Trace
from repro.workloads.hacc import hacc_flush_times, hacc_io_trace
from repro.workloads.ior import ior_trace


@pytest.fixture(scope="module")
def hacc_trace():
    return hacc_io_trace(ranks=16, loops=10, period=8.0, first_phase_delay=6.0, seed=4)


@pytest.fixture(scope="module")
def online_config():
    return FtioConfig(sampling_frequency=10.0, use_autocorrelation=False, compute_characterization=False)


class TestOnlinePredictor:
    def test_step_on_empty_trace_rejected(self, online_config):
        predictor = OnlinePredictor(config=online_config)
        with pytest.raises(AnalysisError):
            predictor.step(Trace.empty())

    def test_history_grows_and_latest_returns_last(self, hacc_trace, online_config):
        predictor = OnlinePredictor(config=online_config)
        flush_times = hacc_flush_times(hacc_trace)[:4]
        for t in flush_times:
            predictor.step(hacc_trace.window(hacc_trace.t_start, t), now=t)
        assert len(predictor.history) == 4
        assert predictor.latest() is predictor.history[-1]
        assert predictor.latest().index == 3

    def test_predictions_converge_to_true_period(self, hacc_trace, online_config):
        steps = replay_online(hacc_trace, hacc_flush_times(hacc_trace), config=online_config)
        periods = [s.period for s in steps if s.period is not None]
        assert len(periods) >= 3
        true_period = hacc_trace.ground_truth.average_period()
        # The last prediction should be close to the ground truth (Figure 15).
        assert periods[-1] == pytest.approx(true_period, rel=0.2)

    def test_adaptive_window_shrinks(self, hacc_trace, online_config):
        steps = replay_online(
            hacc_trace, hacc_flush_times(hacc_trace), config=online_config, adaptive_window=True
        )
        # After `online_window_hits` consecutive detections the window stops
        # growing with the trace: its length is bounded by hits * period.
        later = [s for s in steps[4:] if s.period is not None]
        assert later, "expected predictions after the warm-up"
        hits = online_config.online_window_hits
        for step in later:
            assert step.window_length <= (hits + 1.5) * step.period

    def test_non_adaptive_window_keeps_growing(self, hacc_trace, online_config):
        steps = replay_online(
            hacc_trace, hacc_flush_times(hacc_trace), config=online_config, adaptive_window=False
        )
        lengths = [s.window_length for s in steps]
        assert lengths == sorted(lengths)

    def test_merged_intervals_cover_true_frequency(self, hacc_trace, online_config):
        predictor = OnlinePredictor(config=online_config)
        for t in hacc_flush_times(hacc_trace):
            visible = hacc_trace.window(hacc_trace.t_start, t)
            if visible.is_empty:
                continue
            predictor.step(visible, now=t)
        intervals = predictor.merged_intervals()
        assert intervals
        true_freq = 1.0 / hacc_trace.ground_truth.average_period()
        best = intervals[0]
        assert best.probability >= 0.5
        assert best.contains(true_freq, slack=0.05)

    def test_latest_period_skips_failed_steps(self, online_config):
        trace = ior_trace(ranks=4, iterations=6, compute_time=50.0, seed=9)
        predictor = OnlinePredictor(config=FtioConfig(sampling_frequency=1.0, use_autocorrelation=False))
        # First step sees only a sliver of data: typically no detection.
        early_end = trace.t_start + 30.0
        early = trace.window(trace.t_start, early_end)
        if not early.is_empty:
            predictor.step(early, now=early_end)
        predictor.step(trace, now=trace.t_end)
        assert predictor.latest_period() is not None


class TestIncrementalHooks:
    def test_evictable_before_tracks_adaptive_window(self, hacc_trace, online_config):
        predictor = OnlinePredictor(config=online_config)
        assert predictor.evictable_before() is None
        for t in hacc_flush_times(hacc_trace):
            predictor.step(hacc_trace.completed_before(t), now=t)
        cutoff = predictor.evictable_before()
        assert cutoff is not None
        # The cutoff is exactly the adaptive window start of the next step.
        last = predictor.latest()
        hits = online_config.online_window_hits
        assert cutoff == pytest.approx(last.time - hits * last.period)

    def test_evictable_before_stays_none_without_adaptation(self, hacc_trace, online_config):
        predictor = OnlinePredictor(config=online_config, adaptive_window=False)
        for t in hacc_flush_times(hacc_trace):
            predictor.step(hacc_trace.completed_before(t), now=t)
        assert predictor.evictable_before() is None

    def test_state_dict_round_trip(self, hacc_trace, online_config):
        predictor = OnlinePredictor(config=online_config)
        for t in hacc_flush_times(hacc_trace):
            predictor.step(hacc_trace.completed_before(t), now=t)

        restored = OnlinePredictor(config=online_config)
        restored.load_state_dict(predictor.state_dict())

        assert restored.latest_period() == predictor.latest_period()
        assert restored.evictable_before() == predictor.evictable_before()
        assert [s.period for s in restored.history] == [s.period for s in predictor.history]
        assert [s.window for s in restored.history] == [s.window for s in predictor.history]
        assert [(i.low, i.high, i.probability) for i in restored.merged_intervals()] == [
            (i.low, i.high, i.probability) for i in predictor.merged_intervals()
        ]

    def test_compact_history_preserves_predictions(self, hacc_trace, online_config):
        from repro.core.online import RestoredResult

        full = OnlinePredictor(config=online_config)
        compact = OnlinePredictor(config=online_config, compact_history=True)
        for t in hacc_flush_times(hacc_trace):
            trace = hacc_trace.completed_before(t)
            full_step = full.step(trace, now=t)
            compact_step = compact.step(trace, now=t)
            # step() still returns the full result to the caller...
            assert compact_step.period == full_step.period
            assert type(compact_step.result) is type(full_step.result)
        # ... but the retained history holds only the compact shim.
        assert all(
            s.result is None or isinstance(s.result, RestoredResult) for s in compact.history
        )
        assert [s.period for s in compact.history] == [s.period for s in full.history]
        assert compact.latest_period() == full.latest_period()
        assert [(i.low, i.high) for i in compact.merged_intervals()] == [
            (i.low, i.high) for i in full.merged_intervals()
        ]

    def test_load_state_dict_restores_adaptive_flag(self, hacc_trace, online_config):
        source = OnlinePredictor(config=online_config, adaptive_window=False)
        for t in hacc_flush_times(hacc_trace)[:4]:
            source.step(hacc_trace.completed_before(t), now=t)
        restored = OnlinePredictor(config=online_config, adaptive_window=True)
        restored.load_state_dict(source.state_dict())
        assert restored.adaptive_window is False
        assert restored.evictable_before() is None

    def test_restored_predictor_continues_identically(self, hacc_trace, online_config):
        times = hacc_flush_times(hacc_trace)
        full = OnlinePredictor(config=online_config)
        for t in times:
            full.step(hacc_trace.completed_before(t), now=t)

        half = OnlinePredictor(config=online_config)
        for t in times[: len(times) // 2]:
            half.step(hacc_trace.completed_before(t), now=t)
        resumed = OnlinePredictor(config=online_config)
        resumed.load_state_dict(half.state_dict())
        for t in times[len(times) // 2 :]:
            resumed.step(hacc_trace.completed_before(t), now=t)

        assert [s.period for s in resumed.history] == [s.period for s in full.history]


class TestReplayHelpers:
    def test_predict_from_flushes(self, hacc_trace, online_config, tmp_path):
        path = tmp_path / "hacc.jsonl"
        jsonl.write_trace(hacc_trace, path, requests_per_flush=max(len(hacc_trace) // 10, 1))
        flushes = list(jsonl.iter_flushes(path))
        steps = predict_from_flushes(flushes, config=online_config)
        assert len(steps) >= 5
        assert any(s.period is not None for s in steps)

    def test_predict_from_flushes_merges_metadata_once_per_carrying_flush(
        self, hacc_trace, online_config
    ):
        from repro.trace.jsonl import FlushRecord, trace_to_flushes

        flushes = trace_to_flushes(hacc_trace, hacc_flush_times(hacc_trace))
        # Only the first flush carries metadata; a later metadata-only flush
        # updates a counter without carrying requests.
        flushes.append(
            FlushRecord(
                flush_index=len(flushes),
                timestamp=flushes[-1].timestamp + 1.0,
                requests=(),
                metadata={"ranks": 999},
            )
        )
        steps = predict_from_flushes(flushes, config=online_config)
        assert steps
        assert any(s.period is not None for s in steps)

    def test_predict_from_file(self, hacc_trace, online_config, tmp_path):
        path = tmp_path / "hacc.jsonl"
        jsonl.write_trace(hacc_trace, path, requests_per_flush=max(len(hacc_trace) // 6, 1))
        steps = predict_from_file(path, config=online_config)
        assert steps
        assert steps[-1].period is not None
