"""Unit and integration tests for the online prediction mode."""

from __future__ import annotations

import pytest

from repro.core import FtioConfig, OnlinePredictor
from repro.core.online import predict_from_file, predict_from_flushes, replay_online
from repro.exceptions import AnalysisError
from repro.trace import jsonl
from repro.trace.trace import Trace
from repro.workloads.hacc import hacc_flush_times, hacc_io_trace
from repro.workloads.ior import ior_trace


@pytest.fixture(scope="module")
def hacc_trace():
    return hacc_io_trace(ranks=16, loops=10, period=8.0, first_phase_delay=6.0, seed=4)


@pytest.fixture(scope="module")
def online_config():
    return FtioConfig(sampling_frequency=10.0, use_autocorrelation=False, compute_characterization=False)


class TestOnlinePredictor:
    def test_step_on_empty_trace_rejected(self, online_config):
        predictor = OnlinePredictor(config=online_config)
        with pytest.raises(AnalysisError):
            predictor.step(Trace.empty())

    def test_history_grows_and_latest_returns_last(self, hacc_trace, online_config):
        predictor = OnlinePredictor(config=online_config)
        flush_times = hacc_flush_times(hacc_trace)[:4]
        for t in flush_times:
            predictor.step(hacc_trace.window(hacc_trace.t_start, t), now=t)
        assert len(predictor.history) == 4
        assert predictor.latest() is predictor.history[-1]
        assert predictor.latest().index == 3

    def test_predictions_converge_to_true_period(self, hacc_trace, online_config):
        steps = replay_online(hacc_trace, hacc_flush_times(hacc_trace), config=online_config)
        periods = [s.period for s in steps if s.period is not None]
        assert len(periods) >= 3
        true_period = hacc_trace.ground_truth.average_period()
        # The last prediction should be close to the ground truth (Figure 15).
        assert periods[-1] == pytest.approx(true_period, rel=0.2)

    def test_adaptive_window_shrinks(self, hacc_trace, online_config):
        steps = replay_online(
            hacc_trace, hacc_flush_times(hacc_trace), config=online_config, adaptive_window=True
        )
        # After `online_window_hits` consecutive detections the window stops
        # growing with the trace: its length is bounded by hits * period.
        later = [s for s in steps[4:] if s.period is not None]
        assert later, "expected predictions after the warm-up"
        hits = online_config.online_window_hits
        for step in later:
            assert step.window_length <= (hits + 1.5) * step.period

    def test_non_adaptive_window_keeps_growing(self, hacc_trace, online_config):
        steps = replay_online(
            hacc_trace, hacc_flush_times(hacc_trace), config=online_config, adaptive_window=False
        )
        lengths = [s.window_length for s in steps]
        assert lengths == sorted(lengths)

    def test_merged_intervals_cover_true_frequency(self, hacc_trace, online_config):
        predictor = OnlinePredictor(config=online_config)
        for t in hacc_flush_times(hacc_trace):
            visible = hacc_trace.window(hacc_trace.t_start, t)
            if visible.is_empty:
                continue
            predictor.step(visible, now=t)
        intervals = predictor.merged_intervals()
        assert intervals
        true_freq = 1.0 / hacc_trace.ground_truth.average_period()
        best = intervals[0]
        assert best.probability >= 0.5
        assert best.contains(true_freq, slack=0.05)

    def test_latest_period_skips_failed_steps(self, online_config):
        trace = ior_trace(ranks=4, iterations=6, compute_time=50.0, seed=9)
        predictor = OnlinePredictor(config=FtioConfig(sampling_frequency=1.0, use_autocorrelation=False))
        # First step sees only a sliver of data: typically no detection.
        early_end = trace.t_start + 30.0
        early = trace.window(trace.t_start, early_end)
        if not early.is_empty:
            predictor.step(early, now=early_end)
        predictor.step(trace, now=trace.t_end)
        assert predictor.latest_period() is not None


class TestReplayHelpers:
    def test_predict_from_flushes(self, hacc_trace, online_config, tmp_path):
        path = tmp_path / "hacc.jsonl"
        jsonl.write_trace(hacc_trace, path, requests_per_flush=max(len(hacc_trace) // 10, 1))
        flushes = list(jsonl.iter_flushes(path))
        steps = predict_from_flushes(flushes, config=online_config)
        assert len(steps) >= 5
        assert any(s.period is not None for s in steps)

    def test_predict_from_file(self, hacc_trace, online_config, tmp_path):
        path = tmp_path / "hacc.jsonl"
        jsonl.write_trace(hacc_trace, path, requests_per_flush=max(len(hacc_trace) // 6, 1))
        steps = predict_from_file(path, config=online_config)
        assert steps
        assert steps[-1].period is not None
