"""Regression tests: the incremental online replay must reproduce the
pre-optimization behaviour exactly.

The reference implementations below are verbatim copies of the code before the
incremental rewrite: ``replay_online`` materialized ``IORequest`` lists and
rebuilt a trace per step, and ``predict_from_flushes`` rebuilt the full trace
from every flush seen so far on each step.  The optimized versions must
produce identical :class:`PredictionStep` sequences.
"""

from __future__ import annotations

import pytest

from repro.core import FtioConfig, OnlinePredictor
from repro.core.online import PredictionStep, predict_from_flushes, replay_online
from repro.trace.jsonl import FlushRecord, flushes_to_trace
from repro.trace.trace import Trace
from repro.workloads.hacc import hacc_flush_times, hacc_io_trace


@pytest.fixture(scope="module")
def hacc_trace():
    return hacc_io_trace(ranks=16, loops=10, period=8.0, first_phase_delay=6.0, seed=21)


@pytest.fixture(scope="module")
def online_config():
    return FtioConfig(
        sampling_frequency=10.0, use_autocorrelation=False, compute_characterization=False
    )


def _reference_replay_online(trace, prediction_times, *, config, adaptive_window=True):
    """Pre-optimization ``replay_online``: per-step IORequest materialization."""
    predictor = OnlinePredictor(config=config, adaptive_window=adaptive_window)
    steps = []
    for t in sorted(prediction_times):
        visible = trace.window(trace.t_start, t) if not trace.is_empty else trace
        if visible.is_empty:
            continue
        mask = visible.ends <= t
        completed = Trace.from_requests(
            [visible.request(i) for i in range(len(visible)) if mask[i]],
            metadata=dict(trace.metadata),
        )
        if completed.is_empty:
            continue
        steps.append(predictor.step(completed, now=t))
    return steps


def _reference_predict_from_flushes(flushes, *, config, adaptive_window=True):
    """Pre-optimization ``predict_from_flushes``: full rebuild per flush."""
    predictor = OnlinePredictor(config=config, adaptive_window=adaptive_window)
    steps = []
    seen = []
    for flush in sorted(flushes, key=lambda f: f.flush_index):
        seen.append(flush)
        trace = flushes_to_trace(seen)
        if trace.is_empty:
            continue
        steps.append(predictor.step(trace, now=flush.timestamp))
    return steps


def assert_steps_identical(actual: list[PredictionStep], expected: list[PredictionStep]):
    assert len(actual) == len(expected)
    for a, e in zip(actual, expected):
        assert a.index == e.index
        assert a.time == e.time
        assert a.window == e.window
        assert (a.result is None) == (e.result is None)
        assert a.dominant_frequency == e.dominant_frequency
        assert a.period == e.period
        assert a.confidence == e.confidence


def _trace_to_flushes(trace, flush_times):
    """Cut a finished trace into append-only flush records at the given times."""
    flushes = []
    previous = trace.t_start - 1.0
    for index, t in enumerate(sorted(flush_times)):
        mask = (trace.ends > previous) & (trace.ends <= t)
        requests = tuple(
            trace.request(i) for i in range(len(trace)) if mask[i]
        )
        flushes.append(
            FlushRecord(
                flush_index=index,
                timestamp=float(t),
                requests=requests,
                metadata={"app": "hacc-io", "flushes": index + 1},
            )
        )
        previous = t
    return flushes


class TestReplayEquivalence:
    @pytest.mark.parametrize("adaptive_window", [True, False])
    def test_replay_online_matches_reference(self, hacc_trace, online_config, adaptive_window):
        times = hacc_flush_times(hacc_trace)
        new = replay_online(
            hacc_trace, times, config=online_config, adaptive_window=adaptive_window
        )
        old = _reference_replay_online(
            hacc_trace, times, config=online_config, adaptive_window=adaptive_window
        )
        assert len(new) > 3
        assert_steps_identical(new, old)

    def test_replay_online_empty_trace(self, online_config):
        assert replay_online(Trace.empty(), [1.0, 2.0], config=online_config) == []

    def test_predict_from_flushes_matches_reference(self, hacc_trace, online_config):
        flushes = _trace_to_flushes(hacc_trace, hacc_flush_times(hacc_trace))
        new = predict_from_flushes(flushes, config=online_config)
        old = _reference_predict_from_flushes(flushes, config=online_config)
        assert len(new) > 3
        assert_steps_identical(new, old)

    def test_predict_from_flushes_with_empty_flushes(self, hacc_trace, online_config):
        flushes = list(_trace_to_flushes(hacc_trace, hacc_flush_times(hacc_trace)))
        # Inject an empty metadata-only flush in the middle and at the start.
        flushes.insert(0, FlushRecord(flush_index=-1, timestamp=0.0, requests=(), metadata={}))
        flushes.insert(
            4,
            FlushRecord(
                flush_index=flushes[3].flush_index,
                timestamp=flushes[3].timestamp,
                requests=(),
                metadata={"ranks": 16},
            ),
        )
        new = predict_from_flushes(flushes, config=online_config)
        old = _reference_predict_from_flushes(flushes, config=online_config)
        assert_steps_identical(new, old)

    def test_metadata_accumulates_across_flushes(self, hacc_trace, online_config):
        flushes = _trace_to_flushes(hacc_trace, hacc_flush_times(hacc_trace))
        steps = predict_from_flushes(flushes, config=online_config)
        final = steps[-1]
        assert final.result is not None
        # flushes_to_trace semantics: later flushes update earlier metadata.
        assert final.result.metadata["trace_metadata"]["flushes"] == len(flushes)
