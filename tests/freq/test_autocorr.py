"""Unit tests for the autocorrelation-based period detection."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import InsufficientSamplesError
from repro.freq.autocorr import (
    autocorrelation,
    detect_period_autocorrelation,
    similarity_to_candidates,
)
from tests.conftest import make_square_wave


class TestAutocorrelation:
    def test_zero_lag_is_one(self):
        rng = np.random.default_rng(0)
        acf = autocorrelation(rng.random(100))
        assert acf[0] == pytest.approx(1.0)

    def test_values_bounded(self):
        rng = np.random.default_rng(1)
        acf = autocorrelation(rng.random(500))
        assert np.all(acf <= 1.0 + 1e-9)
        assert np.all(acf >= -1.0 - 1e-9)

    def test_periodic_signal_peaks_at_period(self):
        fs, period = 2.0, 10.0
        signal = make_square_wave(period=period, duty=0.3, n_periods=12, fs=fs)
        acf = autocorrelation(signal)
        lag = int(period * fs)
        # The ACF at one full period is close to the maximum among non-zero lags.
        assert acf[lag] > 0.6

    def test_constant_signal(self):
        acf = autocorrelation(np.full(50, 7.0))
        assert acf[0] == pytest.approx(1.0)
        assert np.allclose(acf[1:], 0.0)

    def test_too_short_rejected(self):
        with pytest.raises(InsufficientSamplesError):
            autocorrelation([1.0])

    def test_multidimensional_rejected(self):
        with pytest.raises(ValueError):
            autocorrelation(np.ones((3, 3)))


class TestDetectPeriod:
    def test_square_wave_period_recovered(self):
        fs, period = 2.0, 12.0
        signal = make_square_wave(period=period, duty=0.4, n_periods=15, fs=fs)
        result = detect_period_autocorrelation(signal, fs)
        assert result.period == pytest.approx(period, rel=0.1)
        assert result.confidence > 0.8
        assert result.dominant_frequency == pytest.approx(1.0 / period, rel=0.1)

    def test_noisy_periodic_signal(self):
        rng = np.random.default_rng(5)
        fs, period = 2.0, 10.0
        signal = make_square_wave(period=period, duty=0.4, n_periods=20, fs=fs)
        signal = signal + rng.normal(0, 0.05 * signal.max(), size=len(signal))
        result = detect_period_autocorrelation(signal, fs)
        assert result.period == pytest.approx(period, rel=0.15)

    def test_aperiodic_signal_low_confidence(self):
        rng = np.random.default_rng(9)
        result = detect_period_autocorrelation(rng.random(400), 1.0)
        # Either nothing is found or the candidates disagree (low confidence).
        assert result.period is None or result.confidence < 0.9

    def test_no_peaks_returns_none(self):
        result = detect_period_autocorrelation(np.full(64, 5.0), 1.0)
        assert result.period is None
        assert result.confidence == 0.0
        assert len(result.peak_lags) == 0

    def test_metadata_counts(self):
        fs, period = 2.0, 10.0
        signal = make_square_wave(period=period, duty=0.4, n_periods=10, fs=fs)
        result = detect_period_autocorrelation(signal, fs)
        assert result.metadata["n_peaks"] == len(result.peak_lags)
        assert result.metadata["n_filtered"] >= 0


class TestSimilarity:
    def test_identical_candidates_give_high_similarity(self):
        assert similarity_to_candidates(0.1, [10.0, 10.0, 10.0]) > 0.99

    def test_disagreeing_candidates_give_lower_similarity(self):
        tight = similarity_to_candidates(0.1, [10.0, 10.5])
        loose = similarity_to_candidates(0.1, [3.0, 30.0])
        assert tight > loose

    def test_empty_candidates(self):
        assert similarity_to_candidates(0.1, []) == 0.0

    def test_invalid_frequency(self):
        with pytest.raises(Exception):
            similarity_to_candidates(0.0, [1.0])


class TestFftEquivalence:
    """The FFT (Wiener–Khinchin) ACF must match the direct O(N²) method."""

    @staticmethod
    def _direct_autocorrelation(samples):
        """Reference implementation: the pre-optimization np.correlate path."""
        x = np.asarray(samples, dtype=np.float64)
        n = len(x)
        centred = x - x.mean()
        energy = float(np.dot(centred, centred))
        acf = np.zeros(n)
        acf[0] = 1.0
        if energy == 0.0:
            return acf
        full = np.correlate(centred, centred, mode="full")
        return full[n - 1 :] / energy

    @pytest.mark.parametrize("n", [2, 3, 7, 64, 1000, 4097])
    def test_matches_direct_on_random_signals(self, n):
        rng = np.random.default_rng(n)
        x = rng.standard_normal(n)
        np.testing.assert_allclose(
            autocorrelation(x), self._direct_autocorrelation(x), atol=1e-10
        )

    @pytest.mark.parametrize("value", [0.0, 1.0, -3.5])
    def test_matches_direct_on_constant_signals(self, value):
        x = np.full(128, value)
        np.testing.assert_allclose(
            autocorrelation(x), self._direct_autocorrelation(x), atol=1e-10
        )

    def test_matches_direct_on_periodic_signal(self):
        signal = make_square_wave(period=10.0, duty=0.3, n_periods=12, fs=2.0)
        np.testing.assert_allclose(
            autocorrelation(signal), self._direct_autocorrelation(signal), atol=1e-10
        )

    def test_matches_direct_on_short_signals(self):
        for x in ([1.0, 2.0], [0.0, 1.0, 0.0], [5.0, 5.0, 5.0, 4.0]):
            np.testing.assert_allclose(
                autocorrelation(x), self._direct_autocorrelation(x), atol=1e-10
            )
