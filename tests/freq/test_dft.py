"""Unit tests for the DFT helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import InsufficientSamplesError
from repro.freq.dft import cosine_wave, dft, reconstruct


def cosine_signal(freq: float, fs: float, n: int, amplitude: float = 2.0, offset: float = 5.0):
    t = np.arange(n) / fs
    return offset + amplitude * np.cos(2 * np.pi * freq * t)


class TestDft:
    def test_peak_at_known_frequency(self):
        fs, n, freq = 10.0, 1000, 0.5
        result = dft(cosine_signal(freq, fs, n), fs)
        # Skip the DC bin when looking for the peak.
        peak_bin = int(np.argmax(result.amplitudes[1:])) + 1
        assert result.frequencies[peak_bin] == pytest.approx(freq, abs=result.frequency_resolution)

    def test_dc_offset_equals_signal_mean(self):
        fs, n = 4.0, 256
        signal = cosine_signal(0.25, fs, n, offset=7.5)
        result = dft(signal, fs)
        assert result.dc_offset == pytest.approx(signal.mean(), rel=1e-9)

    def test_frequency_resolution(self):
        result = dft(np.ones(100), 10.0)
        assert result.frequency_resolution == pytest.approx(0.1)
        assert result.n_bins == 51

    def test_period_of_bin(self):
        result = dft(np.ones(100), 10.0)
        assert result.period_of_bin(1) == pytest.approx(10.0)
        with pytest.raises(ValueError):
            result.period_of_bin(0)

    def test_too_few_samples_rejected(self):
        with pytest.raises(InsufficientSamplesError):
            dft([1.0, 2.0], 1.0)

    def test_multidimensional_rejected(self):
        with pytest.raises(ValueError):
            dft(np.ones((4, 4)), 1.0)


class TestReconstruct:
    def test_full_reconstruction_matches_original(self):
        rng = np.random.default_rng(0)
        signal = rng.random(128) * 1e6
        result = dft(signal, 2.0)
        rebuilt = reconstruct(result)
        assert np.allclose(rebuilt, signal, rtol=1e-8, atol=1e-3)

    def test_full_reconstruction_odd_length(self):
        rng = np.random.default_rng(1)
        signal = rng.random(129)
        rebuilt = reconstruct(dft(signal, 1.0))
        assert np.allclose(rebuilt, signal, rtol=1e-8, atol=1e-9)

    def test_single_bin_reconstruction_is_cosine(self):
        fs, n, freq = 8.0, 512, 1.0
        signal = cosine_signal(freq, fs, n, amplitude=3.0, offset=2.0)
        result = dft(signal, fs)
        k = int(round(freq / result.frequency_resolution))
        wave = cosine_wave(result, k)
        # The single dominant cosine plus DC reproduces the signal closely.
        assert np.allclose(wave, signal, atol=1e-6)

    def test_cosine_wave_without_dc(self):
        fs, n, freq = 8.0, 512, 1.0
        result = dft(cosine_signal(freq, fs, n, amplitude=3.0, offset=2.0), fs)
        k = int(round(freq / result.frequency_resolution))
        wave = cosine_wave(result, k, include_dc=False)
        assert wave.mean() == pytest.approx(0.0, abs=1e-9)

    def test_cosine_wave_invalid_bin(self):
        result = dft(np.ones(16), 1.0)
        with pytest.raises(ValueError):
            cosine_wave(result, 0)
        with pytest.raises(ValueError):
            cosine_wave(result, result.n_bins)

    def test_reconstruct_custom_length(self):
        result = dft(cosine_signal(1.0, 8.0, 64), 8.0)
        rebuilt = reconstruct(result, n_samples=32)
        assert len(rebuilt) == 32
        with pytest.raises(ValueError):
            reconstruct(result, n_samples=0)
