"""Unit tests for the DFT helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import InsufficientSamplesError
from repro.freq.dft import cosine_wave, dft, reconstruct


def cosine_signal(freq: float, fs: float, n: int, amplitude: float = 2.0, offset: float = 5.0):
    t = np.arange(n) / fs
    return offset + amplitude * np.cos(2 * np.pi * freq * t)


class TestDft:
    def test_peak_at_known_frequency(self):
        fs, n, freq = 10.0, 1000, 0.5
        result = dft(cosine_signal(freq, fs, n), fs)
        # Skip the DC bin when looking for the peak.
        peak_bin = int(np.argmax(result.amplitudes[1:])) + 1
        assert result.frequencies[peak_bin] == pytest.approx(freq, abs=result.frequency_resolution)

    def test_dc_offset_equals_signal_mean(self):
        fs, n = 4.0, 256
        signal = cosine_signal(0.25, fs, n, offset=7.5)
        result = dft(signal, fs)
        assert result.dc_offset == pytest.approx(signal.mean(), rel=1e-9)

    def test_frequency_resolution(self):
        result = dft(np.ones(100), 10.0)
        assert result.frequency_resolution == pytest.approx(0.1)
        assert result.n_bins == 51

    def test_period_of_bin(self):
        result = dft(np.ones(100), 10.0)
        assert result.period_of_bin(1) == pytest.approx(10.0)
        with pytest.raises(ValueError):
            result.period_of_bin(0)

    def test_too_few_samples_rejected(self):
        with pytest.raises(InsufficientSamplesError):
            dft([1.0, 2.0], 1.0)

    def test_multidimensional_rejected(self):
        with pytest.raises(ValueError):
            dft(np.ones((4, 4)), 1.0)


class TestReconstruct:
    def test_full_reconstruction_matches_original(self):
        rng = np.random.default_rng(0)
        signal = rng.random(128) * 1e6
        result = dft(signal, 2.0)
        rebuilt = reconstruct(result)
        assert np.allclose(rebuilt, signal, rtol=1e-8, atol=1e-3)

    def test_full_reconstruction_odd_length(self):
        rng = np.random.default_rng(1)
        signal = rng.random(129)
        rebuilt = reconstruct(dft(signal, 1.0))
        assert np.allclose(rebuilt, signal, rtol=1e-8, atol=1e-9)

    def test_single_bin_reconstruction_is_cosine(self):
        fs, n, freq = 8.0, 512, 1.0
        signal = cosine_signal(freq, fs, n, amplitude=3.0, offset=2.0)
        result = dft(signal, fs)
        k = int(round(freq / result.frequency_resolution))
        wave = cosine_wave(result, k)
        # The single dominant cosine plus DC reproduces the signal closely.
        assert np.allclose(wave, signal, atol=1e-6)

    def test_cosine_wave_without_dc(self):
        fs, n, freq = 8.0, 512, 1.0
        result = dft(cosine_signal(freq, fs, n, amplitude=3.0, offset=2.0), fs)
        k = int(round(freq / result.frequency_resolution))
        wave = cosine_wave(result, k, include_dc=False)
        assert wave.mean() == pytest.approx(0.0, abs=1e-9)

    def test_cosine_wave_invalid_bin(self):
        result = dft(np.ones(16), 1.0)
        with pytest.raises(ValueError):
            cosine_wave(result, 0)
        with pytest.raises(ValueError):
            cosine_wave(result, result.n_bins)

    def test_reconstruct_custom_length(self):
        result = dft(cosine_signal(1.0, 8.0, 64), 8.0)
        rebuilt = reconstruct(result, n_samples=32)
        assert len(rebuilt) == 32
        with pytest.raises(ValueError):
            reconstruct(result, n_samples=0)


def _loop_reconstruct(result, *, bins=None, n_samples=None):
    """Reference implementation: the pre-optimization per-bin Python loop."""
    n = int(n_samples if n_samples is not None else result.n_samples)
    t_index = np.arange(n)
    total = np.full(n, result.dc_offset, dtype=np.float64)
    if bins is None:
        selected = np.arange(1, result.n_bins)
    else:
        selected = np.unique(np.asarray(bins, dtype=np.int64))
        selected = selected[selected >= 1]
    n_orig = result.n_samples
    for k in selected:
        k = int(k)
        factor = 1.0 if (n_orig % 2 == 0 and k == n_orig // 2) else 2.0
        total += (
            factor
            * result.amplitudes[k]
            / n_orig
            * np.cos(2.0 * np.pi * k * t_index / n_orig + result.phases[k])
        )
    return total


class TestReconstructEquivalence:
    """The vectorized reconstruction must match the per-bin reference loop."""

    @pytest.fixture(scope="class")
    def noisy_result(self):
        rng = np.random.default_rng(42)
        fs, n = 10.0, 1024
        signal = cosine_signal(0.5, fs, n) + 0.3 * rng.standard_normal(n)
        return dft(signal, fs)

    @pytest.mark.parametrize(
        "bins",
        [None, [1], [1, 5, 9], list(range(1, 65)), [512], [3, 3, 3, 7]],
    )
    def test_matches_loop_even_length(self, noisy_result, bins):
        np.testing.assert_allclose(
            reconstruct(noisy_result, bins=bins),
            _loop_reconstruct(noisy_result, bins=bins),
            atol=1e-10,
        )

    def test_matches_loop_odd_length(self):
        rng = np.random.default_rng(7)
        result = dft(rng.random(333), 2.0)
        for bins in (None, [1, 2, 3], [result.n_bins - 1]):
            np.testing.assert_allclose(
                reconstruct(result, bins=bins),
                _loop_reconstruct(result, bins=bins),
                atol=1e-10,
            )

    def test_matches_loop_on_extension(self, noisy_result):
        np.testing.assert_allclose(
            reconstruct(noisy_result, bins=[1, 4], n_samples=2500),
            _loop_reconstruct(noisy_result, bins=[1, 4], n_samples=2500),
            atol=1e-10,
        )

    def test_matches_loop_on_truncation(self, noisy_result):
        np.testing.assert_allclose(
            reconstruct(noisy_result, bins=[2, 8], n_samples=100),
            _loop_reconstruct(noisy_result, bins=[2, 8], n_samples=100),
            atol=1e-10,
        )

    def test_out_of_range_bin_raises(self, noisy_result):
        with pytest.raises(IndexError):
            reconstruct(noisy_result, bins=[noisy_result.n_bins])
