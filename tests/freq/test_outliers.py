"""Unit tests for the outlier-detection methods."""

from __future__ import annotations

import numpy as np
import pytest

from repro.freq.outliers import (
    DETECTOR_REGISTRY,
    DbscanDetector,
    FindPeaksDetector,
    IsolationForestDetector,
    LocalOutlierFactorDetector,
    ZScoreDetector,
    dbscan_labels,
    make_detector,
)
from repro.freq.outliers.dbscan import NOISE
from repro.freq.outliers.lof import local_outlier_factors


def spectrum_with_outlier(n: int = 200, outlier_value: float = 50.0, index: int = 42):
    """A noisy flat power spectrum with one huge bin."""
    rng = np.random.default_rng(1)
    power = rng.random(n)
    power[index] = outlier_value
    return power, index


class TestZScore:
    def test_detects_single_outlier(self):
        power, index = spectrum_with_outlier()
        result = ZScoreDetector().detect(power)
        assert result.is_outlier[index]
        assert result.n_outliers == 1
        assert result.outlier_indices().tolist() == [index]

    def test_flat_spectrum_has_no_outliers(self):
        result = ZScoreDetector().detect(np.full(100, 3.0))
        assert result.n_outliers == 0

    def test_threshold_validation(self):
        with pytest.raises(Exception):
            ZScoreDetector(threshold=0.0)

    def test_scores_match_zscore_definition(self):
        power = np.array([1.0, 1.0, 1.0, 10.0])
        result = ZScoreDetector().detect(power)
        expected = (np.abs(power) - abs(power.mean())) / power.std()
        assert np.allclose(result.scores, expected)


class TestDbscan:
    def test_labels_cluster_and_noise(self):
        points = np.array([0.0, 0.1, 0.2, 0.15, 10.0])
        labels = dbscan_labels(points, eps=0.5, min_samples=2)
        assert labels[-1] == NOISE
        assert len(set(labels[:-1])) == 1
        assert labels[0] != NOISE

    def test_two_clusters(self):
        points = np.concatenate([np.linspace(0, 1, 10), np.linspace(100, 101, 10)])
        labels = dbscan_labels(points, eps=0.5, min_samples=3)
        assert set(labels) == {0, 1}

    def test_2d_points(self):
        pts = np.array([[0, 0], [0.1, 0.1], [0.2, 0], [5, 5]])
        labels = dbscan_labels(pts, eps=0.5, min_samples=2)
        assert labels[3] == NOISE

    def test_empty_input(self):
        assert dbscan_labels(np.zeros(0), eps=1.0, min_samples=2).size == 0

    def test_detector_flags_high_power_noise_points(self):
        power, index = spectrum_with_outlier()
        result = DbscanDetector().detect(power)
        assert result.is_outlier[index]

    def test_detector_empty_input(self):
        result = DbscanDetector().detect(np.zeros(0))
        assert result.n_outliers == 0


class TestIsolationForest:
    def test_detects_outlier(self):
        power, index = spectrum_with_outlier()
        result = IsolationForestDetector(n_trees=30, seed=3).detect(power)
        assert result.is_outlier[index]
        assert 0.0 <= result.scores.min() and result.scores.max() <= 1.0

    def test_outlier_scores_highest_at_anomaly(self):
        power, index = spectrum_with_outlier()
        detector = IsolationForestDetector(n_trees=30, seed=3)
        scores = detector.anomaly_scores(power)
        assert int(np.argmax(scores)) == index

    def test_deterministic_with_seed(self):
        power, _ = spectrum_with_outlier()
        a = IsolationForestDetector(seed=5).detect(power)
        b = IsolationForestDetector(seed=5).detect(power)
        assert np.allclose(a.scores, b.scores)


class TestLocalOutlierFactor:
    def test_lof_of_uniform_data_near_one(self):
        values = np.linspace(0, 1, 50)
        lof = local_outlier_factors(values, k=5)
        assert np.all(lof[1:-1] < 1.5)

    def test_detects_outlier(self):
        power, index = spectrum_with_outlier()
        result = LocalOutlierFactorDetector(n_neighbors=10).detect(power)
        assert result.is_outlier[index]

    def test_constant_input(self):
        lof = local_outlier_factors(np.full(20, 2.0), k=3)
        assert np.allclose(lof, 1.0)

    def test_empty_input(self):
        result = LocalOutlierFactorDetector().detect(np.zeros(0))
        assert result.n_outliers == 0


class TestFindPeaks:
    def test_detects_dominant_peak(self):
        power, index = spectrum_with_outlier()
        result = FindPeaksDetector(prominence_ratio=0.5).detect(power)
        assert result.is_outlier[index]

    def test_flat_spectrum(self):
        result = FindPeaksDetector().detect(np.zeros(50))
        assert result.n_outliers == 0

    def test_prominence_ratio_validation(self):
        with pytest.raises(Exception):
            FindPeaksDetector(prominence_ratio=1.5)


class TestRegistry:
    def test_all_registered_detectors_run(self):
        power, index = spectrum_with_outlier()
        for name in DETECTOR_REGISTRY:
            detector = make_detector(name)
            result = detector.detect(power)
            assert result.method == name
            assert len(result.scores) == len(power)
            # Every method should flag the blatant outlier.
            assert result.is_outlier[index], f"{name} missed the outlier"

    def test_unknown_detector_rejected(self):
        with pytest.raises(ValueError):
            make_detector("does-not-exist")

    def test_mismatched_frequencies_rejected(self):
        with pytest.raises(ValueError):
            ZScoreDetector().detect(np.ones(10), np.ones(5))
