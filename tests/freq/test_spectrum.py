"""Unit tests for the power spectrum."""

from __future__ import annotations

import numpy as np
import pytest

from repro.freq.dft import dft
from repro.freq.spectrum import power_spectrum, power_spectrum_from_dft


class TestPowerSpectrum:
    def test_power_definition(self):
        signal = np.cos(2 * np.pi * 0.1 * np.arange(100))
        result = dft(signal, 1.0)
        spectrum = power_spectrum_from_dft(result)
        assert np.allclose(spectrum.power, np.abs(result.coefficients) ** 2 / result.n_samples)

    def test_normalized_power_sums_to_one(self):
        rng = np.random.default_rng(3)
        spectrum = power_spectrum(rng.random(200), 2.0)
        assert spectrum.normalized_power.sum() == pytest.approx(1.0)

    def test_dominant_contribution_of_pure_cosine(self):
        fs, n, freq = 10.0, 1000, 1.0
        t = np.arange(n) / fs
        spectrum = power_spectrum(5.0 + np.cos(2 * np.pi * freq * t), fs)
        top = spectrum.top_bins(1)[0]
        assert spectrum.frequencies[top] == pytest.approx(freq, abs=spectrum.frequency_resolution)
        assert spectrum.contribution(top) > 0.95

    def test_dc_power_excluded_from_analysis(self):
        spectrum = power_spectrum(np.full(64, 3.0), 1.0)
        assert spectrum.dc_power > 0
        assert spectrum.total_power == pytest.approx(0.0, abs=1e-12)
        assert np.allclose(spectrum.normalized_power, 0.0)

    def test_max_frequency_is_nyquist(self):
        spectrum = power_spectrum(np.ones(100), 10.0)
        assert spectrum.max_frequency == pytest.approx(5.0)

    def test_period_of_bin_and_bounds(self):
        spectrum = power_spectrum(np.arange(50, dtype=float), 1.0)
        assert spectrum.period_of_bin(1) == pytest.approx(50.0)
        with pytest.raises(ValueError):
            spectrum.period_of_bin(0)
        with pytest.raises(ValueError):
            spectrum.contribution(spectrum.n_bins)

    def test_top_bins_ordering(self):
        fs, n = 10.0, 500
        t = np.arange(n) / fs
        signal = 3.0 * np.cos(2 * np.pi * 1.0 * t) + 1.0 * np.cos(2 * np.pi * 2.0 * t)
        spectrum = power_spectrum(signal, fs)
        top2 = spectrum.top_bins(2)
        assert spectrum.frequencies[top2[0]] == pytest.approx(1.0, abs=0.05)
        assert spectrum.frequencies[top2[1]] == pytest.approx(2.0, abs=0.05)
        assert spectrum.top_bins(0) == []

    def test_parseval_theorem(self):
        """Sum of DFT powers equals the time-domain energy (Parseval)."""
        rng = np.random.default_rng(7)
        signal = rng.random(256)
        result = dft(signal, 1.0)
        # Rebuild the full two-sided power from the single-sided coefficients.
        full = np.fft.fft(signal)
        lhs = float(np.sum(np.abs(full) ** 2) / len(signal))
        rhs = float(np.sum(signal**2))
        assert lhs == pytest.approx(rhs, rel=1e-9)
        # The single-sided spectrum's DC + doubled positive bins match too.
        spectrum = power_spectrum_from_dft(result)
        doubled = spectrum.power.copy()
        doubled[1:] *= 2.0
        if len(signal) % 2 == 0:
            doubled[-1] /= 2.0
        assert float(doubled.sum()) == pytest.approx(rhs, rel=1e-9)
