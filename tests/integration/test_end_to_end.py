"""End-to-end integration tests: tracer → file → FTIO → scheduling."""

from __future__ import annotations

import pytest

from repro.core import Ftio, FtioConfig
from repro.core.online import predict_from_file
from repro.trace import jsonl, msgpack
from repro.trace.darshan import heatmap_from_trace, read_heatmap, write_heatmap
from repro.trace.recorder import read_recorder_directory, write_recorder_directory
from repro.tracer.tmio import TmioTracer, TracerMode
from repro.workloads.hacc import hacc_flush_times, hacc_io_trace
from repro.workloads.ior import ior_trace


@pytest.fixture(scope="module")
def ior():
    return ior_trace(ranks=8, iterations=8, compute_time=90.0, seed=21)


@pytest.fixture(scope="module")
def detection_config():
    return FtioConfig(sampling_frequency=1.0, use_autocorrelation=True)


class TestOfflinePipeline:
    def test_tracer_to_jsonl_to_detection(self, ior, detection_config, tmp_path):
        """Simulated application + TMIO offline mode + FTIO detection."""
        path = tmp_path / "app.jsonl"
        tracer = TmioTracer(mode=TracerMode.OFFLINE, path=path, metadata=dict(ior.metadata))
        for request in ior:
            tracer.record(request)
        tracer.finalize()

        restored = jsonl.read_trace(path)
        assert restored.volume == ior.volume

        result = Ftio(detection_config).detect(restored)
        true_period = ior.ground_truth.average_period()
        assert result.is_periodic
        assert result.period == pytest.approx(true_period, rel=0.1)

    def test_all_formats_give_identical_periods(self, ior, detection_config, tmp_path):
        """JSONL, MessagePack, Recorder and Darshan inputs agree on the period."""
        ftio = Ftio(detection_config)
        reference = ftio.detect(ior).period

        jsonl_path = tmp_path / "trace.jsonl"
        jsonl.write_trace(ior, jsonl_path)
        assert ftio.detect(jsonl.read_trace(jsonl_path)).period == pytest.approx(reference, rel=1e-6)

        msgpack_path = tmp_path / "trace.msgpack"
        msgpack.write_trace(ior, msgpack_path)
        assert ftio.detect(msgpack.read_trace(msgpack_path)).period == pytest.approx(
            reference, rel=1e-6
        )

        recorder_dir = write_recorder_directory(ior, tmp_path / "recorder")
        assert ftio.detect(read_recorder_directory(recorder_dir)).period == pytest.approx(
            reference, rel=1e-6
        )

        heatmap_path = tmp_path / "darshan.json"
        write_heatmap(heatmap_from_trace(ior, bin_width=1.0), heatmap_path)
        heatmap_period = ftio.detect(read_heatmap(heatmap_path)).period
        assert heatmap_period == pytest.approx(reference, rel=0.05)


class TestOnlinePipeline:
    def test_online_flushes_to_prediction(self, tmp_path):
        """Simulated HACC-IO loop flushing after every phase, FTIO predicting online."""
        trace = hacc_io_trace(ranks=16, loops=10, period=8.0, first_phase_delay=6.0, seed=22)
        path = tmp_path / "hacc.jsonl"
        tracer = TmioTracer(mode=TracerMode.ONLINE, path=path, metadata={"app": "hacc-io"})

        flush_times = hacc_flush_times(trace)
        requests = sorted(trace.requests(), key=lambda r: r.end)
        cursor = 0
        for flush_time in flush_times:
            while cursor < len(requests) and requests[cursor].end <= flush_time:
                tracer.record(requests[cursor])
                cursor += 1
            tracer.flush(timestamp=flush_time)

        config = FtioConfig(
            sampling_frequency=10.0, use_autocorrelation=False, compute_characterization=False
        )
        steps = predict_from_file(path, config=config)
        assert len(steps) == len(flush_times)
        periods = [s.period for s in steps if s.period is not None]
        assert periods, "online prediction never found a period"
        true_period = trace.ground_truth.average_period()
        assert periods[-1] == pytest.approx(true_period, rel=0.2)

    def test_characterization_consistent_with_workload(self, ior, detection_config):
        result = Ftio(detection_config).detect(ior)
        characterization = result.characterization
        assert characterization is not None
        # The IOR job spends roughly io_phase_duration / period of its time on I/O.
        expected_ratio = 10.0 / ior.ground_truth.average_period()
        assert characterization.time_ratio == pytest.approx(expected_ratio, rel=0.5)
        assert characterization.periodicity_score > 0.5
