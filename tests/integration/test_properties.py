"""Property-based tests (hypothesis) on core data structures and invariants."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.characterization import characterize
from repro.exceptions import AnalysisError
from repro.freq.autocorr import autocorrelation
from repro.freq.dft import dft, reconstruct
from repro.freq.spectrum import power_spectrum
from repro.trace import msgpack
from repro.trace.bandwidth import bandwidth_signal
from repro.trace.record import IOKind, IORequest
from repro.trace.sampling import DiscreteSignal, discretize_trace
from repro.trace.trace import Trace, merge_traces

# ----------------------------------------------------------------------- #
# strategies
# ----------------------------------------------------------------------- #
# Draw (rank, start, duration, nbytes, kind) and build the request from it so
# the end >= start invariant holds by construction.
request_strategy = st.tuples(
    st.integers(min_value=0, max_value=7),
    st.floats(min_value=0.0, max_value=100.0, allow_nan=False, allow_infinity=False),
    st.floats(min_value=0.0, max_value=50.0, allow_nan=False, allow_infinity=False),
    st.integers(min_value=0, max_value=10**9),
    st.sampled_from([IOKind.WRITE, IOKind.READ]),
).map(
    lambda t: IORequest(rank=t[0], start=t[1], end=t[1] + t[2], nbytes=t[3], kind=t[4])
)

requests_strategy = st.lists(request_strategy, min_size=1, max_size=30)

signal_strategy = st.lists(
    st.floats(min_value=0.0, max_value=1e9, allow_nan=False, allow_infinity=False),
    min_size=8,
    max_size=256,
).map(lambda xs: np.asarray(xs))

msgpack_value = st.recursive(
    st.none()
    | st.booleans()
    | st.integers(min_value=-(2**62), max_value=2**62)
    | st.floats(allow_nan=False, allow_infinity=False)
    | st.text(max_size=40)
    | st.binary(max_size=40),
    lambda children: st.lists(children, max_size=6)
    | st.dictionaries(st.text(max_size=10), children, max_size=6),
    max_leaves=20,
)


# ----------------------------------------------------------------------- #
# trace invariants
# ----------------------------------------------------------------------- #
class TestTraceProperties:
    @given(requests=requests_strategy)
    @settings(max_examples=50, deadline=None)
    def test_volume_is_sum_of_requests(self, requests):
        trace = Trace.from_requests(requests)
        assert trace.volume == sum(r.nbytes for r in requests)
        assert len(trace) == len(requests)

    @given(requests=requests_strategy)
    @settings(max_examples=50, deadline=None)
    def test_starts_are_sorted(self, requests):
        trace = Trace.from_requests(requests)
        assert np.all(np.diff(trace.starts) >= 0)

    @given(requests=requests_strategy, offset=st.floats(min_value=0.0, max_value=1e4))
    @settings(max_examples=30, deadline=None)
    def test_shift_preserves_volume_and_duration(self, requests, offset):
        trace = Trace.from_requests(requests)
        moved = trace.shifted(offset)
        assert moved.volume == trace.volume
        assert moved.duration == pytest.approx(trace.duration, rel=1e-9, abs=1e-9)

    @given(requests=requests_strategy)
    @settings(max_examples=30, deadline=None)
    def test_kind_partition_is_complete(self, requests):
        trace = Trace.from_requests(requests)
        writes = trace.filter_kind(IOKind.WRITE)
        reads = trace.filter_kind(IOKind.READ)
        assert len(writes) + len(reads) == len(trace)
        assert writes.volume + reads.volume == trace.volume

    @given(requests=requests_strategy)
    @settings(max_examples=30, deadline=None)
    def test_merge_with_empty_is_identity(self, requests):
        trace = Trace.from_requests(requests)
        merged = merge_traces([trace, Trace.empty()])
        assert len(merged) == len(trace)
        assert merged.volume == trace.volume


class TestBandwidthProperties:
    @given(requests=requests_strategy)
    @settings(max_examples=50, deadline=None, suppress_health_check=[HealthCheck.filter_too_much])
    def test_bandwidth_signal_conserves_volume(self, requests):
        trace = Trace.from_requests(requests)
        writes = trace.filter_kind(IOKind.WRITE)
        if writes.is_empty or writes.volume == 0:
            return
        signal = bandwidth_signal(trace)
        # Instantaneous requests produce extreme rates that can cost a few
        # bytes to floating-point cancellation; conservation holds to 0.01 %.
        assert signal.volume() == pytest.approx(writes.volume, rel=1e-4)
        assert np.all(signal.values >= 0)

    @given(requests=requests_strategy, fs=st.sampled_from([0.5, 1.0, 4.0]))
    @settings(max_examples=30, deadline=None)
    def test_bin_sampling_conserves_volume(self, requests, fs):
        trace = Trace.from_requests(requests)
        writes = trace.filter_kind(IOKind.WRITE)
        if writes.is_empty or writes.volume == 0 or writes.duration < 4.0 / fs:
            return
        discrete = discretize_trace(trace, fs, mode="bin")
        assert discrete.volume() == pytest.approx(writes.volume, rel=1e-4)
        assert discrete.abstraction_error == pytest.approx(0.0, abs=1e-4)


# ----------------------------------------------------------------------- #
# spectral invariants
# ----------------------------------------------------------------------- #
class TestSpectralProperties:
    @given(samples=signal_strategy)
    @settings(max_examples=50, deadline=None)
    def test_dft_idft_round_trip(self, samples):
        result = dft(samples, 1.0)
        rebuilt = reconstruct(result)
        assert np.allclose(rebuilt, samples, rtol=1e-6, atol=1e-3)

    @given(samples=signal_strategy)
    @settings(max_examples=50, deadline=None)
    def test_normalized_power_is_a_distribution(self, samples):
        spectrum = power_spectrum(samples, 1.0)
        normalized = spectrum.normalized_power
        assert np.all(normalized >= -1e-12)
        total = normalized.sum()
        assert total == pytest.approx(1.0) or total == pytest.approx(0.0)

    @given(samples=signal_strategy)
    @settings(max_examples=50, deadline=None)
    def test_autocorrelation_bounded_and_unit_at_zero(self, samples):
        acf = autocorrelation(samples)
        assert acf[0] == pytest.approx(1.0)
        assert np.all(acf <= 1.0 + 1e-6)
        assert np.all(acf >= -1.0 - 1e-6)

    @given(
        samples=signal_strategy,
        frequency=st.floats(min_value=0.02, max_value=0.45),
    )
    @settings(max_examples=40, deadline=None)
    def test_characterization_metrics_in_domain(self, samples, frequency):
        signal = DiscreteSignal(samples=samples, sampling_frequency=1.0)
        try:
            result = characterize(signal, frequency)
        except AnalysisError:
            return
        assert 0.0 <= result.time_ratio <= 1.0
        assert result.sigma_vol >= 0.0
        assert result.sigma_time >= 0.0
        assert 0.0 <= result.periodicity_score <= 1.0


# ----------------------------------------------------------------------- #
# serialization invariants
# ----------------------------------------------------------------------- #
class TestMsgpackProperties:
    @given(value=msgpack_value)
    @settings(max_examples=80, deadline=None)
    def test_round_trip(self, value):
        assert msgpack.unpackb(msgpack.packb(value)) == value
