"""Property and unit tests of the dependency-free metrics core.

The load-bearing guarantee is the one the sharded service relies on:
histogram state merges by elementwise addition, so cross-shard quantile
estimates are exactly as accurate as a single-process histogram would have
been — pooling per-shard snapshots in any order or grouping changes nothing.
The hypothesis suites pin that algebra (associativity, commutativity,
pooled-equivalence) plus the one-bucket accuracy bound of the quantile
estimator; the unit tests pin the registry, view and exposition contracts
the gateway's ``/metrics`` endpoint depends on.
"""

from __future__ import annotations

import bisect
import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import (
    DEFAULT_LATENCY_BUCKETS,
    NULL_HISTOGRAM,
    SPAN_STAGES,
    Counter,
    Gauge,
    Histogram,
    MetricRegistry,
    SpanJournal,
    merge_snapshots,
    render_prometheus,
)
from repro.service import protocol as proto

# Small bounds keep shrunk counterexamples readable.
BOUNDS = (0.001, 0.01, 0.1, 1.0)

samples_st = st.lists(
    st.floats(min_value=0.0, max_value=5.0, allow_nan=False, allow_infinity=False),
    max_size=40,
)


def hist_of(samples: list[float]) -> Histogram:
    hist = Histogram(BOUNDS)
    for sample in samples:
        hist.observe(sample)
    return hist


def bucket_index(value: float) -> int:
    """Index of the bucket a value lands in (len(BOUNDS) = overflow)."""
    return bisect.bisect_left(BOUNDS, value)


def assert_pooled_equal(left: Histogram, right: Histogram) -> None:
    """Equality up to float-addition order in the running sum.

    Bucket counts and the observed maximum merge exactly; the running sum is
    a float accumulation whose grouping differs between `merge` and
    sequential observation, so it is compared to within rounding.
    """
    assert left.bounds == right.bounds
    assert left.to_dict()["counts"] == right.to_dict()["counts"]
    assert left.max == right.max
    assert left.sum == pytest.approx(right.sum, rel=1e-12, abs=1e-12)


class TestHistogramAlgebra:
    @given(a=samples_st, b=samples_st)
    @settings(max_examples=200, deadline=None)
    def test_merge_is_commutative(self, a, b):
        assert hist_of(a).merge(hist_of(b)) == hist_of(b).merge(hist_of(a))

    @given(a=samples_st, b=samples_st, c=samples_st)
    @settings(max_examples=200, deadline=None)
    def test_merge_is_associative(self, a, b, c):
        ha, hb, hc = hist_of(a), hist_of(b), hist_of(c)
        assert_pooled_equal(ha.merge(hb).merge(hc), ha.merge(hb.merge(hc)))

    @given(a=samples_st, b=samples_st)
    @settings(max_examples=200, deadline=None)
    def test_merge_equals_pooled_observation(self, a, b):
        # Sharding transparency: observing everything in one histogram is
        # identical to merging per-shard histograms.
        assert_pooled_equal(hist_of(a).merge(hist_of(b)), hist_of(a + b))

    @given(samples=samples_st, q=st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=300, deadline=None)
    def test_quantile_within_one_bucket_of_truth(self, samples, q):
        hist = hist_of(samples)
        if not samples:
            assert hist.quantile(q) == 0.0
            return
        ordered = sorted(samples)
        # The estimator picks the first bucket whose cumulative count reaches
        # q * n, i.e. the ceil(q * n)-th order statistic.
        rank = max(0, min(len(ordered) - 1, math.ceil(q * len(ordered)) - 1))
        truth = ordered[rank]
        estimate = hist.quantile(q)
        assert abs(bucket_index(estimate) - bucket_index(truth)) <= 1
        assert estimate <= hist.max

    @given(samples=samples_st)
    @settings(max_examples=100, deadline=None)
    def test_state_round_trips_through_plain_types(self, samples):
        hist = hist_of(samples)
        assert Histogram.from_dict(hist.to_dict()) == hist

    def test_merge_rejects_mismatched_bounds(self):
        with pytest.raises(ValueError):
            Histogram((1.0, 2.0)).merge(Histogram((1.0, 3.0)))

    def test_bounds_validation(self):
        with pytest.raises(ValueError):
            Histogram(())
        with pytest.raises(ValueError):
            Histogram((1.0, 1.0))
        with pytest.raises(ValueError):
            Histogram((1.0, float("inf")))

    def test_null_histogram_is_inert(self):
        NULL_HISTOGRAM.observe(1.0)  # must not raise, must not keep state


class TestScalars:
    def test_counter_only_goes_up(self):
        counter = Counter()
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_gauge_moves_both_ways(self):
        gauge = Gauge()
        gauge.set(10)
        gauge.inc(5)
        gauge.dec(3)
        assert gauge.value == 12


class TestRegistry:
    def test_same_name_and_labels_return_same_instrument(self):
        registry = MetricRegistry()
        one = registry.histogram("h", {"stage": "rfft"})
        two = registry.histogram("h", {"stage": "rfft"})
        other = registry.histogram("h", {"stage": "acf"})
        assert one is two
        assert one is not other

    def test_kind_conflicts_are_rejected(self):
        registry = MetricRegistry()
        registry.counter("x")
        with pytest.raises(ValueError):
            registry.gauge("x")
        with pytest.raises(ValueError):
            registry.register_view("x", "gauge", lambda: 0)

    def test_views_read_at_collect_time_and_raising_views_drop(self):
        registry = MetricRegistry()
        state = {"frames": 0}
        registry.register_view("frames_total", "counter", lambda: state["frames"])
        registry.register_view("dead_ring", "gauge", lambda: 1 / 0)
        state["frames"] = 7
        snapshot = registry.collect()
        assert snapshot["frames_total"]["series"][0]["value"] == 7
        # A raising view (e.g. a ring whose shard died) drops its series
        # instead of failing the whole scrape.
        assert "dead_ring" not in snapshot

    def test_merge_snapshots_pools_counters_gauges_and_hists(self):
        shards = []
        for observations in ((0.002, 0.02), (0.2, 2.0)):
            registry = MetricRegistry()
            registry.counter("jobs_total").inc(3)
            registry.gauge("occupancy").set(10)
            hist = registry.histogram("latency", buckets=BOUNDS)
            for value in observations:
                hist.observe(value)
            shards.append(registry.collect())
        merged = merge_snapshots(shards)
        assert merged["jobs_total"]["series"][0]["value"] == 6
        assert merged["occupancy"]["series"][0]["value"] == 20
        pooled = Histogram.from_dict(merged["latency"]["series"][0]["hist"])
        assert_pooled_equal(pooled, hist_of([0.002, 0.02, 0.2, 2.0]))

    @given(a=samples_st, b=samples_st)
    @settings(max_examples=100, deadline=None)
    def test_merge_snapshots_matches_histogram_merge(self, a, b):
        snaps = []
        for samples in (a, b):
            registry = MetricRegistry()
            hist = registry.histogram("latency", buckets=BOUNDS)
            for value in samples:
                hist.observe(value)
            snaps.append(registry.collect())
        merged = merge_snapshots(snaps)
        assert_pooled_equal(
            Histogram.from_dict(merged["latency"]["series"][0]["hist"]), hist_of(a + b)
        )


class TestPrometheusRendering:
    def test_exposition_shape(self):
        registry = MetricRegistry()
        registry.counter("repro_frames_total", help="Frames decoded").inc(5)
        hist = registry.histogram("repro_latency_seconds", {"stage": "rfft"}, buckets=BOUNDS)
        hist.observe(0.005)
        hist.observe(3.0)
        text = render_prometheus(registry.collect())
        assert text.endswith("\n")
        assert "# HELP repro_frames_total Frames decoded" in text
        assert "# TYPE repro_frames_total counter" in text
        assert "repro_frames_total 5" in text
        assert "# TYPE repro_latency_seconds histogram" in text
        assert 'repro_latency_seconds_bucket{stage="rfft",le="0.01"} 1' in text
        assert 'repro_latency_seconds_bucket{stage="rfft",le="+Inf"} 2' in text
        assert 'repro_latency_seconds_count{stage="rfft"} 2' in text

    def test_label_values_are_escaped(self):
        registry = MetricRegistry()
        registry.counter("c", {"job": 'a"b\\c\nd'}).inc()
        text = render_prometheus(registry.collect())
        assert 'job="a\\"b\\\\c\\nd"' in text

    def test_bucket_counts_are_cumulative(self):
        hist = hist_of([0.0005, 0.005, 0.05, 0.5, 5.0])
        registry = MetricRegistry()
        registry.histogram("h", buckets=BOUNDS)  # register the name
        snapshot = {"h": {"kind": "histogram", "help": "", "series": [
            {"labels": {}, "hist": hist.to_dict()}]}}
        lines = [
            line for line in render_prometheus(snapshot).splitlines()
            if line.startswith("h_bucket")
        ]
        counts = [int(line.rsplit(" ", 1)[1]) for line in lines]
        assert counts == sorted(counts)
        assert counts[-1] == 5


class TestSpanJournal:
    def test_ring_is_bounded_and_counts_evictions(self):
        journal = SpanJournal(capacity=4)
        for index in range(10):
            journal.record("detect", 0.001, job=f"job-{index}")
        assert len(journal) == 4
        assert journal.recorded == 10
        snapshot = journal.snapshot()
        assert [span["job"] for span in snapshot] == [f"job-{i}" for i in range(6, 10)]
        assert all(span["duration"] == 0.001 for span in snapshot)

    def test_span_context_manager_times_the_block(self):
        journal = SpanJournal()
        with journal.span("kernel", job="batch[3]"):
            pass
        (span,) = journal.snapshot()
        assert span["stage"] == "kernel"
        assert span["job"] == "batch[3]"
        assert span["duration"] >= 0.0

    def test_stage_catalogue_is_pinned(self):
        assert SPAN_STAGES == (
            "ingest", "route", "ring", "batch_claim", "kernel", "detect", "publish",
        )


class TestMetricsReportMessage:
    def test_round_trip_carries_a_collected_snapshot(self):
        registry = MetricRegistry()
        registry.counter("repro_frames_total").inc(3)
        registry.histogram("repro_latency_seconds", buckets=BOUNDS).observe(0.02)
        report = proto.MetricsReport(metrics=registry.collect())
        decoded = proto.decode_message(proto.encode_message(report))
        assert isinstance(decoded, proto.MetricsReport)
        assert decoded.metrics["repro_frames_total"]["series"][0]["value"] == 3
        restored = Histogram.from_dict(
            decoded.metrics["repro_latency_seconds"]["series"][0]["hist"]
        )
        assert restored.count == 1

    def test_registry_code_is_pinned(self):
        assert proto.MESSAGE_TYPES[28] is proto.MetricsReport

    def test_empty_report_is_the_poll_request(self):
        decoded = proto.decode_message(proto.encode_message(proto.MetricsReport()))
        assert decoded.metrics == {}
