"""Unit and integration tests for the scheduling metrics and the Figure 17 experiment."""

from __future__ import annotations

import pytest

from repro.cluster.filesystem import SharedFileSystem
from repro.cluster.job import JobSpec
from repro.cluster.simulator import ClusterSimulator
from repro.scheduling.baseline import FairShareScheduler
from repro.scheduling.experiment import (
    CONFIGURATIONS,
    SchedulingExperiment,
    WorkloadConfig,
    summarize,
)
from repro.scheduling.metrics import evaluate, isolated_baselines


class TestMetrics:
    def test_isolated_execution_has_unit_metrics(self):
        fs = SharedFileSystem(capacity=1e9)
        spec = JobSpec(name="solo", period=50.0, io_fraction=0.2, iterations=3, io_bandwidth=1e9)
        result = ClusterSimulator(fs, FairShareScheduler(), [spec]).run()
        metrics = evaluate(result, filesystem=fs)
        assert metrics.stretch == pytest.approx(1.0, rel=1e-6)
        assert metrics.io_slowdown == pytest.approx(1.0, rel=1e-6)
        assert metrics.utilization == pytest.approx(0.8, rel=1e-6)
        assert metrics.as_row()["scheduler"] == "original"

    def test_contended_execution_has_higher_metrics(self):
        fs = SharedFileSystem(capacity=1e9)
        jobs = [
            JobSpec(name=f"j{i}", period=50.0, io_fraction=0.4, iterations=3, io_bandwidth=1e9)
            for i in range(3)
        ]
        result = ClusterSimulator(fs, FairShareScheduler(), jobs).run()
        baselines = isolated_baselines(jobs, fs)
        metrics = evaluate(result, baselines)
        assert metrics.stretch > 1.0
        assert metrics.io_slowdown > 1.0

    def test_evaluate_requires_baselines_or_filesystem(self):
        fs = SharedFileSystem(capacity=1e9)
        spec = JobSpec(name="solo", period=50.0, io_fraction=0.2, iterations=1, io_bandwidth=1e9)
        result = ClusterSimulator(fs, FairShareScheduler(), [spec]).run()
        with pytest.raises(ValueError):
            evaluate(result)


class TestWorkloadConfig:
    def test_defaults_match_paper(self):
        config = WorkloadConfig()
        assert config.high_frequency_period == pytest.approx(19.2)
        assert config.low_frequency_period == pytest.approx(384.0)
        assert config.n_high == 1
        assert config.n_low == 15
        assert config.io_fraction == pytest.approx(0.0625)

    def test_invalid_values(self):
        with pytest.raises(Exception):
            WorkloadConfig(io_fraction=0.0)
        with pytest.raises(Exception):
            WorkloadConfig(n_low=0)


@pytest.fixture(scope="module")
def small_experiment():
    """A reduced Figure 17 workload that keeps the test fast."""
    return SchedulingExperiment(
        WorkloadConfig(n_low=5, iterations_high=20, iterations_low=2, release_jitter=10.0)
    )


class TestSchedulingExperiment:
    def test_build_jobs(self, small_experiment):
        jobs = small_experiment.build_jobs(seed=0)
        assert len(jobs) == 6
        names = [j.name for j in jobs]
        assert "high-0" in names
        periods = small_experiment.true_periods(jobs)
        assert periods["high-0"] == pytest.approx(19.2)
        assert periods["low-0"] == pytest.approx(384.0)

    def test_unknown_configuration_rejected(self, small_experiment):
        with pytest.raises(ValueError):
            small_experiment.run_configuration("set10-magic", seed=0)

    def test_all_configurations_run_and_rank_correctly(self, small_experiment):
        runs = small_experiment.run(repetitions=2, seed=3)
        assert len(runs) == 2 * len(CONFIGURATIONS)
        summary = summarize(runs)
        assert set(summary) == set(CONFIGURATIONS)
        original = summary["original"]
        ftio = summary["set10-ftio"]
        clairvoyant = summary["set10-clairvoyant"]
        # Figure 17 ordering: Set-10 beats the unmodified system on every metric,
        # and the clairvoyant variant is at least as good as the FTIO-fed one.
        assert ftio["io_slowdown"] < original["io_slowdown"]
        assert ftio["stretch"] < original["stretch"]
        assert ftio["utilization"] > original["utilization"]
        assert clairvoyant["io_slowdown"] <= ftio["io_slowdown"] * 1.02

    def test_repetitions_are_paired_across_configurations(self, small_experiment):
        runs = small_experiment.run(repetitions=1, seed=5)
        by_config = {run.configuration: run for run in runs}
        jobs_a = [j.spec.start_time for j in by_config["original"].result.jobs]
        jobs_b = [j.spec.start_time for j in by_config["set10-ftio"].result.jobs]
        assert jobs_a == pytest.approx(jobs_b)
