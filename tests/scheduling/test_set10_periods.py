"""Unit tests for the Set-10 scheduler and the period providers."""

from __future__ import annotations

import pytest

from repro.cluster.filesystem import SharedFileSystem
from repro.cluster.job import JobSpec, JobState, PhaseRecord
from repro.cluster.simulator import ClusterSimulator
from repro.scheduling.periods import ClairvoyantPeriods, ErrorInjectedPeriods, FtioPeriods
from repro.scheduling.set10 import Set10Scheduler


def job_state(name: str, period: float = 100.0, waiting_since: float | None = 0.0) -> JobState:
    spec = JobSpec(
        name=name, period=period, io_fraction=0.1, iterations=3, io_bandwidth=1e9
    )
    state = JobState(spec=spec)
    state.start(0.0)
    state.remaining_compute = 0.0
    if waiting_since is not None:
        state.begin_io(waiting_since)
    return state


def phase_record(name: str, iteration: int, start: float, period: float) -> PhaseRecord:
    return PhaseRecord(job=name, iteration=iteration, start=start, end=start + 2.0, nbytes=1e9)


class TestClairvoyantAndErrorProviders:
    def test_clairvoyant_lookup(self):
        provider = ClairvoyantPeriods({"a": 19.2, "b": 384.0})
        assert provider.period_of("a") == pytest.approx(19.2)
        assert provider.period_of("missing") is None

    def test_error_injection_is_plus_or_minus_fifty_percent(self):
        provider = ErrorInjectedPeriods(ClairvoyantPeriods({"a": 100.0}), error=0.5, seed=1)
        values = {provider.period_of("a") for _ in range(50)}
        assert values <= {50.0, 150.0}
        assert len(values) == 2

    def test_error_on_unknown_period_stays_none(self):
        provider = ErrorInjectedPeriods(ClairvoyantPeriods({}), error=0.5)
        assert provider.period_of("a") is None

    def test_invalid_error_rejected(self):
        with pytest.raises(ValueError):
            ErrorInjectedPeriods(ClairvoyantPeriods({}), error=1.5)


class TestFtioPeriods:
    def test_bootstrap_then_ftio_estimate(self):
        provider = FtioPeriods(min_phases=3)
        state = job_state("app", period=50.0, waiting_since=None)
        # Feed perfectly periodic phases 50 s apart.
        for i in range(8):
            provider.observe_phase(state, phase_record("app", i, start=50.0 * i, period=50.0), time=50.0 * i + 2)
        estimate = provider.period_of("app")
        assert estimate == pytest.approx(50.0, rel=0.1)
        assert provider.evaluations >= 1

    def test_unknown_before_two_phases(self):
        provider = FtioPeriods()
        state = job_state("app", waiting_since=None)
        assert provider.period_of("app") is None
        provider.observe_phase(state, phase_record("app", 0, 0.0, 50.0), time=2.0)
        assert provider.period_of("app") is None


class TestSet10Scheduler:
    def test_set_assignment_by_order_of_magnitude(self):
        scheduler = Set10Scheduler(ClairvoyantPeriods({"fast": 19.2, "slow": 384.0}))
        assert scheduler.set_index("fast") == 1
        assert scheduler.set_index("slow") == 2
        assert scheduler.set_index("unknown") == scheduler._unknown_set

    def test_priority_favours_small_period(self):
        scheduler = Set10Scheduler(ClairvoyantPeriods({"fast": 19.2, "slow": 384.0}))
        shares = scheduler.allocate([job_state("fast", 19.2), job_state("slow", 384.0)], time=0.0)
        assert shares["fast"] > shares["slow"]
        assert sum(shares.values()) == pytest.approx(1.0)
        # Weight ratio equals the inverse period ratio.
        assert shares["fast"] / shares["slow"] == pytest.approx(384.0 / 19.2, rel=1e-6)

    def test_exclusive_within_set_fcfs(self):
        scheduler = Set10Scheduler(ClairvoyantPeriods({"a": 300.0, "b": 300.0}))
        early = job_state("a", 300.0, waiting_since=5.0)
        late = job_state("b", 300.0, waiting_since=9.0)
        shares = scheduler.allocate([late, early], time=10.0)
        assert shares == {"a": pytest.approx(1.0)}

    def test_single_job_gets_everything(self):
        scheduler = Set10Scheduler(ClairvoyantPeriods({"a": 100.0}))
        shares = scheduler.allocate([job_state("a", 100.0)], time=0.0)
        assert shares["a"] == pytest.approx(1.0)

    def test_unknown_period_gets_lowest_priority(self):
        scheduler = Set10Scheduler(ClairvoyantPeriods({"known": 20.0}))
        shares = scheduler.allocate(
            [job_state("known", 20.0), job_state("mystery", 20.0)], time=0.0
        )
        assert shares["known"] > 0.99
        assert shares["mystery"] < 0.01

    def test_on_phase_complete_feeds_provider(self):
        provider = FtioPeriods()
        scheduler = Set10Scheduler(provider)
        state = job_state("app", 50.0, waiting_since=None)
        for i in range(3):
            scheduler.on_phase_complete(state, phase_record("app", i, 50.0 * i, 50.0), time=50.0 * i + 2)
        assert provider.period_of("app") is not None

    def test_end_to_end_simulation_with_set10(self):
        fs = SharedFileSystem(capacity=1e9)
        jobs = [
            JobSpec(name="fast", period=20.0, io_fraction=0.2, iterations=10, io_bandwidth=1e9),
            JobSpec(name="slow", period=200.0, io_fraction=0.2, iterations=2, io_bandwidth=1e9),
        ]
        scheduler = Set10Scheduler(ClairvoyantPeriods({"fast": 20.0, "slow": 200.0}))
        result = ClusterSimulator(fs, scheduler, jobs).run()
        fast = result.job("fast")
        slow = result.job("slow")
        # The high-frequency job is prioritized: it barely stretches.
        assert fast.io_slowdown < slow.io_slowdown
        assert fast.stretch < 1.2
