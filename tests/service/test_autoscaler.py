"""Chaos/load-ramp harness of the autoscaler and zero-pause migration.

Extends the resharding chaos machinery (``test_resharding.py``) with an
*active autoscaler*: topology changes are no longer scripted calls to
``reshard()`` but decisions of the :class:`~repro.service.autoscaler.
Autoscaler` control loop reacting to the service's own load signals — and
the same contract must hold, strengthened:

* chaotic submit/pump/load-ramp/kill -9 interleavings under an active
  autoscaler end **bit-identical** to a fixed-topology reference run —
  including a kill -9 landing inside an *autoscaler-initiated* reshard;
* a deterministic load ramp (jobs arriving, then finishing) provokes
  grow-then-shrink through the hysteresis policy, with the cooldown and
  both clamps respected under a scripted fake clock;
* the hysteresis state machine itself is pinned in isolation with
  table-driven canned-stats tests (flap suppression at band edges).

``REPRO_SOAK=1`` unlocks a seeded randomized soak variant on the same
machinery (``REPRO_SOAK_SEED`` shifts the seed for the CI matrix).
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.analysis.benchmark import synthetic_flush_streams
from repro.service import (
    AutoscaleConfig,
    AutoscaleSignals,
    Autoscaler,
    HysteresisPolicy,
    ShardedService,
)
from test_resharding import (
    assert_bit_identical,
    frame_for,
    kill_victim,
    pump_service,
    run_reference,
    service_config,  # noqa: F401  (module-scoped fixture, used by name)
    submit_round,
)

# --------------------------------------------------------------------- #
# table-driven hysteresis state machine (satellite: policy in isolation)
# --------------------------------------------------------------------- #
POLICY_CONFIG = AutoscaleConfig(
    min_shards=1,
    max_shards=4,
    cooldown_seconds=10.0,
    high_sessions_per_shard=20.0,
    low_sessions_per_shard=5.0,
    high_pending_per_shard=16.0,
    low_pending_per_shard=2.0,
    high_p99_latency_seconds=0.5,
    low_p99_latency_seconds=0.05,
    high_deferred_delta=8.0,
    up_consecutive=2,
    down_consecutive=2,
    step_shards=1,
)


def sig(shards=2, sessions=0, pending=0, p99=None, dead=0, deferred=0):
    return AutoscaleSignals(
        shards=shards,
        dead_shards=dead,
        sessions=sessions,
        pending_evaluations=pending,
        deferred=deferred,
        p99_latency_seconds=p99,
    )


HIGH = sig(sessions=100)        # 50 sessions/shard: breaches the high band
LOW = sig(sessions=4, p99=0.01)  # 2/shard, everything under the low bands
MID = sig(sessions=20, p99=0.1)  # 10/shard: inside the dead band


class TestHysteresisPolicy:
    """One canned (signals, time) script per behavior; actions pinned."""

    @pytest.mark.parametrize(
        "script",
        [
            # Streaks: one high tick is noise, the second acts.
            [(HIGH, 0.0, "hold"), (HIGH, 1.0, "grow")],
            # Flap suppression: a dead-band tick resets the up streak, so
            # load hovering at the band edge never scales.
            [(HIGH, 0.0, "hold"), (MID, 1.0, "hold"), (HIGH, 2.0, "hold"),
             (HIGH, 3.0, "grow")],
            # Down pressure needs *all* low bands clear for the full streak.
            [(LOW, 0.0, "hold"), (LOW, 1.0, "shrink")],
            # A single non-low signal (p99 above its low band) blocks shrink.
            [(LOW, 0.0, "hold"), (sig(sessions=4, p99=0.2), 1.0, "hold"),
             (LOW, 2.0, "hold"), (LOW, 3.0, "shrink")],
            # Dead shards preempt scaling entirely.
            [(HIGH, 0.0, "hold"), (sig(sessions=100, dead=1), 1.0, "revive")],
            # Backpressure: a burst of deferred submissions is up pressure.
            [(sig(deferred=0), 0.0, "hold"),
             (sig(deferred=100), 1.0, "hold"),
             (sig(deferred=200), 2.0, "grow")],
        ],
        ids=["up-streak", "flap-suppression", "down-streak", "partial-low",
             "revive-first", "deferred-burst"],
    )
    def test_scripted_decisions(self, script):
        policy = HysteresisPolicy(POLICY_CONFIG)
        for signals, now, expected in script:
            decision = policy.decide(signals, now)
            assert decision.action == expected, decision

    def test_cooldown_blocks_but_streaks_accumulate(self):
        policy = HysteresisPolicy(POLICY_CONFIG)
        assert policy.decide(HIGH, 0.0).action == "hold"
        grown = policy.decide(HIGH, 1.0)
        assert (grown.action, grown.to_shards) == ("grow", 3)
        # Still high: the resize reset the streak (tick 1 rebuilds it), and
        # every later tick inside the 10 s cooldown holds on the cooldown.
        rebuilt = policy.decide(sig(shards=3, sessions=100), 2.0)
        assert rebuilt.action == "hold" and "streak" in rebuilt.reason
        for now in (5.0, 10.9):
            held = policy.decide(sig(shards=3, sessions=100), now)
            assert held.action == "hold" and "cooldown" in held.reason
        # ... and the first tick past it acts immediately (streak is long).
        assert policy.decide(sig(shards=3, sessions=100), 11.1).action == "grow"

    def test_clamps(self):
        policy = HysteresisPolicy(POLICY_CONFIG)
        at_max = sig(shards=4, sessions=400)
        assert policy.decide(at_max, 0.0).action == "hold"
        pinned = policy.decide(at_max, 1.0)
        assert pinned.action == "hold" and "max_shards" in pinned.reason
        policy = HysteresisPolicy(POLICY_CONFIG)
        at_min = sig(shards=1, sessions=1, p99=0.01)
        assert policy.decide(at_min, 0.0).action == "hold"
        floored = policy.decide(at_min, 1.0)
        assert floored.action == "hold" and "min_shards" in floored.reason

    def test_grow_then_shrink_round_trip_with_cooldown(self):
        policy = HysteresisPolicy(POLICY_CONFIG)
        timeline = []
        script = [
            (HIGH, 0.0), (HIGH, 1.0),                      # grow 2 -> 3
            (sig(shards=3, sessions=100), 2.0),            # cooldown
            (sig(shards=3, sessions=100), 12.0),           # grow 3 -> 4
            (sig(shards=4, sessions=4, p99=0.01), 13.0),   # low, streak 1
            (sig(shards=4, sessions=4, p99=0.01), 14.0),   # low, cooldown
            (sig(shards=4, sessions=4, p99=0.01), 23.0),   # shrink 4 -> 3
        ]
        for signals, now in script:
            decision = policy.decide(signals, now)
            if decision.action != "hold":
                timeline.append((decision.action, decision.to_shards))
        assert timeline == [("grow", 3), ("grow", 4), ("shrink", 3)]

    def test_config_validation(self):
        with pytest.raises(ValueError, match="min_shards"):
            AutoscaleConfig(min_shards=0)
        with pytest.raises(ValueError, match="max_shards"):
            AutoscaleConfig(min_shards=4, max_shards=2)
        with pytest.raises(ValueError, match="inverted"):
            AutoscaleConfig(low_sessions_per_shard=50.0, high_sessions_per_shard=10.0)
        with pytest.raises(ValueError, match="step_shards"):
            AutoscaleConfig(step_shards=0)


# --------------------------------------------------------------------- #
# the Autoscaler loop against a scripted engine (no subprocesses)
# --------------------------------------------------------------------- #
class ScriptedEngine:
    """Stats-on-demand stand-in for a ShardedService."""

    def __init__(self, stats_script):
        self._script = list(stats_script)
        self.resizes: list[int] = []
        self.revived: list[int] = []
        self.dead: tuple[int, ...] = ()
        self.metrics = None
        self.last_snapshot = {"sessions": []}

    def stats(self) -> dict:
        return self._script.pop(0) if len(self._script) > 1 else self._script[0]

    def dead_shards(self):
        return self.dead

    def reshard(self, n_shards, *, on_phase=None):
        self.resizes.append(n_shards)
        return {"to_shards": n_shards}

    def revive_shard(self, index, *, state=None):
        self.revived.append(index)
        self.dead = tuple(i for i in self.dead if i != index)


class TestAutoscalerLoop:
    def test_tick_applies_grow_and_records_timeline(self):
        engine = ScriptedEngine([{"shards": 2, "jobs": 100, "pending_evaluations": 0}])
        scaler = Autoscaler(
            engine,
            AutoscaleConfig(max_shards=4, up_consecutive=2, cooldown_seconds=0.0),
            clock=lambda: 0.0,
        )
        assert scaler.tick(0.0).action == "hold"
        decision = scaler.tick(1.0)
        assert (decision.action, decision.to_shards) == ("grow", 3)
        assert engine.resizes == [3]
        assert scaler.decision_counts == {"grow": 1, "shrink": 0, "revive": 0, "hold": 1}
        timeline = scaler.timeline()
        assert [entry["action"] for entry in timeline] == ["grow"]
        status = scaler.status()
        assert status["decisions"]["grow"] == 1
        assert status["timeline"][-1]["to_shards"] == 3

    def test_tick_revives_every_dead_shard(self):
        engine = ScriptedEngine([{"shards": 3, "dead_shards": 2, "jobs": 10}])
        engine.dead = (0, 2)
        scaler = Autoscaler(engine, AutoscaleConfig(), clock=lambda: 0.0)
        assert scaler.tick().action == "revive"
        assert engine.revived == [0, 2]
        assert engine.resizes == []

    def test_injected_resize_callable_is_used(self):
        engine = ScriptedEngine([{"shards": 1, "jobs": 100}])
        routed: list[int] = []
        scaler = Autoscaler(
            engine,
            AutoscaleConfig(up_consecutive=1, cooldown_seconds=0.0),
            clock=lambda: 0.0,
            resize=routed.append,
        )
        assert scaler.tick().action == "grow"
        assert routed == [2] and engine.resizes == []

    def test_supervision_thread_start_stop(self):
        engine = ScriptedEngine([{"shards": 1, "jobs": 0}])
        scaler = Autoscaler(
            engine, AutoscaleConfig(interval_seconds=0.01, up_consecutive=1)
        )
        scaler.start()
        assert scaler.running
        deadline = time.monotonic() + 5.0
        while scaler.decision_counts["hold"] == 0 and time.monotonic() < deadline:
            time.sleep(0.01)
        scaler.stop()
        assert not scaler.running
        assert scaler.decision_counts["hold"] >= 1
        assert scaler.status()["errors"] == 0


# --------------------------------------------------------------------- #
# chaos: autoscaler-initiated reshards, kill -9 included, bit-identical
# --------------------------------------------------------------------- #
GROW_CONFIG = AutoscaleConfig(
    min_shards=1,
    max_shards=4,
    cooldown_seconds=0.0,
    high_sessions_per_shard=10.0,   # 32 jobs / 2 shards = 16 > 10
    low_sessions_per_shard=0.1,
    up_consecutive=1,
    down_consecutive=1,
    step_shards=2,
)
SHRINK_CONFIG = AutoscaleConfig(
    min_shards=1,
    max_shards=4,
    cooldown_seconds=0.0,
    high_sessions_per_shard=1000.0,
    low_sessions_per_shard=100.0,   # 32 jobs / 4 shards = 8 < 100
    high_pending_per_shard=1000.0,
    low_pending_per_shard=100.0,
    high_p99_latency_seconds=2000.0,
    low_p99_latency_seconds=1000.0,
    up_consecutive=1,
    down_consecutive=1,
    step_shards=2,
)


def autoscale_step(sharded, config, streams, *, kill: bool, mid_round: int | None):
    """One autoscaler decision against the live service, chaos injected.

    The reshard is *initiated by the autoscaler* (its default resize path),
    and the ``on_phase`` hook rides along: traffic double-routed while the
    migration runs, a fresh migration target kill -9'd right after the ring
    switch.  Returns the decision.
    """
    old_count = sharded.n_shards
    chaos_state = {"killed": 0}

    def chaos(phase):
        if phase == "parked" and mid_round is not None:
            assert sharded.resharding
            submit_round(sharded, streams, mid_round)
        if phase == "switched" and kill:
            victim = kill_victim(streams, old_count, sharded.ring.n_shards)
            if victim is not None:
                sharded.kill_shard(victim)
                chaos_state["killed"] += 1

    scaler = Autoscaler(sharded, config, clock=lambda: 0.0, on_phase=chaos)
    decision = scaler.tick(0.0)
    return decision, chaos_state["killed"]


class TestAutoscalerChaos:
    @pytest.fixture(scope="class")
    def streams(self):
        return synthetic_flush_streams(
            32, flushes_per_job=6, requests_per_flush=16, seed=42
        )

    def test_autoscaled_run_bit_identical_with_kill9(self, streams, service_config):  # noqa: F811
        """The acceptance path: load-driven 2 -> 4 -> 2 with a kill -9 landing
        inside the autoscaler-initiated grow, bit-identical to the fixed-
        topology reference run ingesting the same stream."""
        n_rounds = max(len(flushes) for flushes in streams.values())
        sharded = ShardedService(2, service_config)
        submitted = 0
        try:
            for _ in range(2):
                submit_round(sharded, streams, submitted)
                submitted += 1
                pump_service(sharded)
            # Load breaches the high band -> the autoscaler grows 2 -> 4,
            # with traffic double-routed mid-migration and a fresh target
            # kill -9'd at the ring switch.
            decision, killed = autoscale_step(
                sharded, GROW_CONFIG, streams, kill=True, mid_round=submitted
            )
            assert (decision.action, decision.to_shards) == ("grow", 4)
            assert killed == 1, "the kill -9 must actually have happened"
            assert sharded.n_shards == 4 and sharded.dead_shards() == ()
            submitted += 1
            pump_service(sharded)
            submit_round(sharded, streams, submitted)
            submitted += 1
            pump_service(sharded)
            # Load per shard now sits under the low bands -> shrink 4 -> 2,
            # again with live traffic riding the migration.
            decision, _ = autoscale_step(
                sharded, SHRINK_CONFIG, streams, kill=False, mid_round=submitted
            )
            assert (decision.action, decision.to_shards) == ("shrink", 2)
            assert sharded.n_shards == 2
            submitted += 1
            pump_service(sharded)
            while submitted < n_rounds:
                submit_round(sharded, streams, submitted)
                submitted += 1
                pump_service(sharded)
            sharded.drain()
            stats = sharded.stats()
            elastic = {
                "state": sharded.snapshot_state(),
                "periods": {
                    job: sharded.publisher.latest_period(job) for job in streams
                },
            }
        finally:
            sharded.close()
        # The reference ingests the same rounds at the same cadence, the two
        # mid-migration rounds included, on a fixed topology.
        ops = [
            ("submit",), ("pump",), ("submit",), ("pump",),
            ("reshard", 4, True, True), ("pump",),
            ("submit",), ("pump",),
            ("reshard", 2, False, True), ("pump",),
        ]
        reference = run_reference(streams, service_config, ops)
        assert_bit_identical(elastic, reference, streams)
        assert stats["reshards"] == 2
        assert stats["double_routed_frames"] > 0, "migrations must double-route"
        assert stats["resharding_in_progress"] is False


# --------------------------------------------------------------------- #
# deterministic load ramp: grow-then-shrink through one live autoscaler
# --------------------------------------------------------------------- #
class TestLoadRamp:
    def test_ramp_provokes_grow_then_shrink(self, service_config):  # noqa: F811
        """Jobs arrive (sessions/shard breaches the high band -> grow), jobs
        finish (everything clears the low bands -> shrink): one autoscaler,
        one config, a scripted clock, and the exact decision sequence and
        shard-count trajectory are pinned."""
        streams = synthetic_flush_streams(
            12, flushes_per_job=2, requests_per_flush=8, seed=7
        )
        config = AutoscaleConfig(
            min_shards=1,
            max_shards=3,
            cooldown_seconds=5.0,
            high_sessions_per_shard=5.0,
            low_sessions_per_shard=2.0,
            low_pending_per_shard=4.0,
            high_p99_latency_seconds=2000.0,
            low_p99_latency_seconds=1000.0,  # latency is not ramped here
            up_consecutive=1,
            down_consecutive=2,
            step_shards=1,
        )
        sharded = ShardedService(1, service_config)
        shard_counts = [sharded.n_shards]
        try:
            scaler = Autoscaler(sharded, config, clock=lambda: 0.0)
            for job_index, (job, flushes) in enumerate(streams.items()):
                sharded.feed_bytes(frame_for(job_index, job, flushes[0]))
            sharded.pump()
            # Ramp up: 12 sessions on 1 shard, then 2 -- the cooldown spaces
            # the grows out, a mid-cooldown tick must hold.
            assert scaler.tick(0.0).action == "grow"
            shard_counts.append(sharded.n_shards)
            assert scaler.tick(2.0).action == "hold"  # in cooldown
            assert scaler.tick(6.0).action == "grow"
            shard_counts.append(sharded.n_shards)
            pinned = scaler.tick(12.0)  # 12/3 = 4 -> inside the dead band
            assert pinned.action == "hold"
            # Ramp down: most jobs finish and are reaped; 2 sessions across
            # 3 shards clears the low bands for down_consecutive ticks.
            for job in sorted(streams)[:-2]:
                sharded.finish_job(job)
            sharded.drain()
            reaped = sharded.reap_finished()
            assert set(reaped) == set(sorted(streams)[:-2])
            assert scaler.tick(18.0).action == "hold"  # streak 1 of 2
            assert scaler.tick(20.0).action == "shrink"
            shard_counts.append(sharded.n_shards)
            assert scaler.tick(22.0).action == "hold"  # cooldown again
            assert scaler.tick(26.0).action == "shrink"
            shard_counts.append(sharded.n_shards)
            # 2 sessions on 1 shard sits in the dead band: the trajectory is
            # stable at the floor, no further decisions.
            assert scaler.tick(32.0).action == "hold"
            assert scaler.tick(34.0).action == "hold"
            assert sharded.n_shards == 1
            assert shard_counts == [1, 2, 3, 2, 1]
            assert [d["action"] for d in scaler.timeline()] == [
                "grow", "grow", "shrink", "shrink"
            ]
            # The survivors kept their sessions across the whole ramp.
            remaining = {s["job"] for s in sharded.snapshot_state()["sessions"]}
            assert remaining == set(sorted(streams)[-2:])
        finally:
            sharded.close()


# --------------------------------------------------------------------- #
# REPRO_SOAK=1: seeded randomized autoscaled soak (CI nightly matrix)
# --------------------------------------------------------------------- #
@pytest.mark.slow
@pytest.mark.skipif(
    not os.environ.get("REPRO_SOAK"),
    reason="soak test only runs when REPRO_SOAK=1 (CI nightly job)",
)
class TestAutoscalerSoak:
    def test_randomized_autoscaled_soak(self, service_config):  # noqa: F811
        """Random op soup with autoscaler-driven topology changes.

        ``REPRO_SOAK_SEED`` shifts the base seed (the CI job fans a small
        matrix over it); each round draws submit/pump/autoscale(kill?)
        ops and asserts the bit-identical property against the reference.
        """
        budget = float(os.environ.get("REPRO_SOAK_SECONDS", "60"))
        base_seed = int(os.environ.get("REPRO_SOAK_SEED", "0"))
        streams = synthetic_flush_streams(
            16, flushes_per_job=8, requests_per_flush=8, seed=13
        )
        n_rounds = max(len(flushes) for flushes in streams.values())
        deadline = time.monotonic() + budget
        rounds = 0
        total_reshards = 0
        while time.monotonic() < deadline:
            rng = np.random.default_rng(20_260_808 + 1_000_003 * base_seed + rounds)
            sharded = ShardedService(2, service_config)
            submitted = 0
            reference_ops: list[tuple] = []
            try:
                for _ in range(int(rng.integers(6, 14))):
                    roll = rng.random()
                    if roll < 0.45 and submitted < n_rounds:
                        submit_round(sharded, streams, submitted)
                        submitted += 1
                        reference_ops.append(("submit",))
                    elif roll < 0.75:
                        pump_service(sharded)
                        reference_ops.append(("pump",))
                    else:
                        grow = sharded.n_shards < 3
                        config = GROW_CONFIG if grow else SHRINK_CONFIG
                        kill = bool(rng.random() < 0.5) and grow
                        traffic = bool(rng.random() < 0.5) and submitted < n_rounds
                        decision, _ = autoscale_step(
                            sharded,
                            config,
                            streams,
                            kill=kill,
                            mid_round=submitted if traffic else None,
                        )
                        if decision.action in ("grow", "shrink"):
                            total_reshards += 1
                            reference_ops.append(("reshard", 0, False, traffic))
                            if traffic:
                                submitted += 1
                while submitted < n_rounds:
                    submit_round(sharded, streams, submitted)
                    submitted += 1
                    pump_service(sharded)
                sharded.drain()
                elastic = {
                    "state": sharded.snapshot_state(),
                    "periods": {
                        job: sharded.publisher.latest_period(job) for job in streams
                    },
                }
            finally:
                sharded.close()
            reference = run_reference(streams, service_config, reference_ops)
            assert_bit_identical(elastic, reference, streams)
            rounds += 1
        assert rounds >= 1
        assert total_reshards >= 1, "the soak must actually have autoscaled"
