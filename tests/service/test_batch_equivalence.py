"""Batched detection must be bit-identical to the sequential path.

The batched engines (:mod:`repro.service.batch`) stack the due sessions'
windows into 2-D arrays and run single vectorized FFT/ACF/outlier kernels
over the stack.  That is only an *optimization* if nothing observable
changes: these tests assert bit-identity — not tolerance-based closeness —
between the batched and sequential paths across mixed window lengths,
NaN-padded ragged batches, both backends, and the service facade with
batching on and off.  A property-based sweep (hypothesis) drives randomized
session populations through both paths.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import FtioConfig
from repro.service import (
    PredictionService,
    ProcessPoolBackend,
    ServiceConfig,
    SessionConfig,
    ThreadBackend,
    detect_sessions_inline,
)
from repro.service.session import JobSession
from repro.trace.jsonl import FlushRecord
from repro.trace.record import IOKind, IORequest


# --------------------------------------------------------------------- #
# session builders
# --------------------------------------------------------------------- #
def make_config(*, fs: float = 10.0, use_acf: bool = False) -> FtioConfig:
    return FtioConfig(
        sampling_frequency=fs,
        use_autocorrelation=use_acf,
        compute_characterization=False,
    )


def make_flushes(seed: int, n_flushes: int, *, period: float = 4.0) -> list[FlushRecord]:
    """A deterministic periodic flush stream (one burst per period)."""
    rng = np.random.default_rng(seed)
    flushes = []
    t = 0.0
    for index in range(n_flushes):
        requests = tuple(
            IORequest(
                rank=r,
                start=t + r * (period / 16),
                end=t + r * (period / 16) + 0.01,
                nbytes=int(rng.integers(1 << 10, 1 << 20)),
                kind=IOKind.WRITE,
            )
            for r in range(8)
        )
        flushes.append(
            FlushRecord(flush_index=index, timestamp=t + period, requests=requests)
        )
        t += period
    return flushes


def build_session(job: str, spec: dict) -> JobSession:
    session = JobSession(
        job, SessionConfig(config=make_config(fs=spec["fs"], use_acf=spec["use_acf"]))
    )
    for flush in make_flushes(spec["seed"], spec["n_flushes"], period=spec["period"]):
        session.ingest(flush)
    return session


def assert_state_equal(a, b, path="state"):
    """Recursive bit-exact comparison of predictor state dicts."""
    assert type(a) is type(b), f"{path}: {type(a)} != {type(b)}"
    if isinstance(a, dict):
        assert a.keys() == b.keys(), f"{path}: keys differ"
        for key in a:
            assert_state_equal(a[key], b[key], f"{path}.{key}")
    elif isinstance(a, (list, tuple)):
        assert len(a) == len(b), f"{path}: lengths differ"
        for i, (x, y) in enumerate(zip(a, b)):
            assert_state_equal(x, y, f"{path}[{i}]")
    elif isinstance(a, np.ndarray):
        assert a.dtype == b.dtype and a.shape == b.shape, f"{path}: array meta differs"
        assert np.array_equal(a, b, equal_nan=True), f"{path}: array values differ"
    elif isinstance(a, float):
        # Bit-exact: NaN must equal NaN, and no tolerance is granted.
        assert (a == b) or (np.isnan(a) and np.isnan(b)), f"{path}: {a} != {b}"
    else:
        assert a == b, f"{path}: {a!r} != {b!r}"


def assert_steps_equal(seq_steps, batch_steps):
    assert len(seq_steps) == len(batch_steps)
    for seq, bat in zip(seq_steps, batch_steps):
        if seq is None or bat is None:
            assert seq is None and bat is None
            continue
        assert seq.index == bat.index
        assert seq.time == bat.time
        assert seq.window == bat.window
        assert_state_equal(seq.dominant_frequency, bat.dominant_frequency, "frequency")
        assert_state_equal(seq.period, bat.period, "period")
        assert_state_equal(seq.confidence, bat.confidence, "confidence")


# --------------------------------------------------------------------- #
# population strategy: mixed lengths, mixed configs, ragged by design
# --------------------------------------------------------------------- #
session_specs = st.lists(
    st.fixed_dictionaries(
        {
            "seed": st.integers(min_value=1, max_value=2**31 - 1),
            "n_flushes": st.integers(min_value=2, max_value=5),
            "period": st.sampled_from([2.0, 4.0, 6.5]),
            "fs": st.sampled_from([5.0, 10.0]),
            "use_acf": st.booleans(),
        }
    ),
    min_size=2,
    max_size=6,
)


class TestBatchedEqualsSequential:
    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(specs=session_specs)
    def test_inline_batch_bit_identical_across_mixed_windows(self, specs):
        """Randomized ragged populations: batched == sequential, bit for bit.

        Sessions differ in flush count, period, sampling frequency and ACF
        setting, so one batch spans several (n_samples, fs) groups and the
        master stack is NaN-padded — exactly the ragged case the kernels
        must not let leak into the results.
        """
        sequential = [build_session(f"job-{i}", spec) for i, spec in enumerate(specs)]
        batched = [build_session(f"job-{i}", spec) for i, spec in enumerate(specs)]

        backend = ThreadBackend()
        seq_steps = [backend.detect(s) for s in sequential]
        report = detect_sessions_inline(batched)
        assert not any(report.failed)
        assert_steps_equal(seq_steps, report.steps)
        for seq, bat in zip(sequential, batched):
            assert_state_equal(seq.predictor.state_dict(), bat.predictor.state_dict())

    def test_second_round_carries_state_identically(self):
        """Adaptive-window state after round 1 feeds round 2 identically."""
        specs = [
            {"seed": s, "n_flushes": n, "period": p, "fs": 10.0, "use_acf": acf}
            for s, n, p, acf in [
                (11, 3, 4.0, False),
                (12, 4, 4.0, True),
                (13, 2, 6.5, False),
                (14, 5, 2.0, True),
            ]
        ]
        sequential = [build_session(f"job-{i}", spec) for i, spec in enumerate(specs)]
        batched = [build_session(f"job-{i}", spec) for i, spec in enumerate(specs)]
        backend = ThreadBackend()
        for round_index in range(2):
            seq_steps = [backend.detect(s) for s in sequential]
            report = detect_sessions_inline(batched)
            assert not any(report.failed)
            assert_steps_equal(seq_steps, report.steps)
            if round_index == 0:
                # New data between rounds, so round 2 evaluates fresh windows
                # from the *carried* predictor state.
                for i, (seq, bat) in enumerate(zip(sequential, batched)):
                    extra = make_flushes(1000 + i, 2, period=specs[i]["period"])
                    for flush in extra:
                        seq.ingest(flush)
                        bat.ingest(flush)
        for seq, bat in zip(sequential, batched):
            assert_state_equal(seq.predictor.state_dict(), bat.predictor.state_dict())

    def test_process_backend_batch_matches_sequential_process_path(self):
        """The remote batch replays the same state transition as per-session
        remote detection (both return restored steps)."""
        specs = [
            {"seed": s, "n_flushes": n, "period": 4.0, "fs": 10.0, "use_acf": False}
            for s, n in [(21, 3), (22, 4), (23, 2)]
        ]
        sequential = [build_session(f"job-{i}", spec) for i, spec in enumerate(specs)]
        batched = [build_session(f"job-{i}", spec) for i, spec in enumerate(specs)]
        backend = ProcessPoolBackend(max_workers=2)
        try:
            seq_steps = [backend.detect(s) for s in sequential]
            report = backend.detect_batch(batched)
            assert not any(report.failed)
            assert_steps_equal(seq_steps, report.steps)
            for seq, bat in zip(sequential, batched):
                assert_state_equal(seq.predictor.state_dict(), bat.predictor.state_dict())
        finally:
            backend.close()

    def test_failed_session_degrades_alone(self):
        """One sick session must not poison its batchmates."""
        good_spec = {"seed": 31, "n_flushes": 3, "period": 4.0, "fs": 10.0, "use_acf": False}
        reference = build_session("good", good_spec)
        good = build_session("good", good_spec)
        sick = build_session("sick", {**good_spec, "seed": 32})

        def boom(*args, **kwargs):
            raise RuntimeError("injected")

        sick.predictor.prepare_step = boom  # type: ignore[method-assign]
        report = detect_sessions_inline([good, sick])
        assert report.failed == [False, True]
        assert report.steps[1] is None
        backend = ThreadBackend()
        assert_steps_equal([backend.detect(reference)], [report.steps[0]])
        # The sick session was aborted, not wedged: it is evaluable again.
        assert not sick._batch_in_flight


class TestServiceFacadeEquivalence:
    @pytest.mark.parametrize("max_workers", [0, 2])
    def test_batching_toggle_is_invisible(self, max_workers):
        """The service publishes identical predictions batching on or off."""

        def run(batching: bool) -> dict:
            service = PredictionService(
                ServiceConfig(
                    session=SessionConfig(config=make_config()),
                    max_workers=max_workers,
                    batching=batching,
                )
            )
            try:
                for i in range(6):
                    for flush in make_flushes(100 + i, 4):
                        service.ingest_flush(f"job-{i}", flush)
                service.drain()
                return {
                    job: service.publisher.latest_period(job) for job in service.jobs
                }
            finally:
                service.close()

        assert run(True) == run(False)
