"""Unit tests for the flush broker and the detection dispatcher."""

from __future__ import annotations

import pytest

from repro.core import FtioConfig
from repro.service import (
    DetectionDispatcher,
    FlushBroker,
    PredictionService,
    ServiceConfig,
    SessionConfig,
)
from repro.trace.framing import FrameWriter, encode_frame
from repro.trace.jsonl import FlushRecord
from repro.trace.record import IORequest


@pytest.fixture(scope="module")
def online_config():
    return FtioConfig(
        sampling_frequency=10.0, use_autocorrelation=False, compute_characterization=False
    )


def make_flush(index: int, *, t0: float = 0.0) -> FlushRecord:
    start = t0 + index * 8.0
    requests = tuple(
        IORequest(rank=r, start=start + r * 0.05, end=start + 0.5, nbytes=1024) for r in range(4)
    )
    return FlushRecord(flush_index=index, timestamp=start + 1.0, requests=requests)


class TestFlushBroker:
    def test_frames_demultiplex_to_per_job_sessions(self, online_config):
        broker = FlushBroker(session_config=SessionConfig(config=online_config))
        data = b""
        for i in range(9):
            data += encode_frame(make_flush(i // 3), job=f"job-{i % 3}")
        # Feed in awkward chunk sizes: framing must reassemble.
        for offset in range(0, len(data), 37):
            broker.feed_bytes(data[offset : offset + 37])
        assert sorted(broker.jobs) == ["job-0", "job-1", "job-2"]
        for job in broker.jobs:
            assert broker.session(job).ingested_flushes == 3
        stats = broker.stats
        assert stats.jobs == 3 and stats.flushes == 9 and stats.requests == 36

    def test_sessions_created_on_demand_with_shared_config(self, online_config):
        config = SessionConfig(config=online_config, max_samples=77)
        broker = FlushBroker(session_config=config)
        session = broker.session("fresh")
        assert session.config.max_samples == 77
        assert broker.session("fresh") is session

    def test_session_factory_overrides_config(self, online_config):
        sizes = {"small": 10, "big": 10_000}

        def factory(job):
            from repro.service import JobSession

            return JobSession(
                job, SessionConfig(config=online_config, max_samples=sizes.get(job, 100))
            )

        broker = FlushBroker(session_factory=factory)
        assert broker.session("small").config.max_samples == 10
        assert broker.session("big").config.max_samples == 10_000

    def test_tail_feeds_broker(self, online_config, tmp_path):
        broker = FlushBroker(session_config=SessionConfig(config=online_config))
        path = tmp_path / "spool.fts"
        writer = FrameWriter(path)
        reader = broker.tail(path)
        writer.write(make_flush(0), job="a")
        writer.write(make_flush(0), job="b")
        assert len(reader.poll()) == 2
        assert sorted(broker.jobs) == ["a", "b"]
        writer.write(make_flush(1), job="a")
        assert len(reader.poll()) == 1
        assert broker.session("a").ingested_flushes == 2


class TestDetectionDispatcher:
    def test_inline_and_threaded_results_agree(self, online_config):
        def run(max_workers):
            service = PredictionService(
                ServiceConfig(
                    session=SessionConfig(config=online_config), max_workers=max_workers
                )
            )
            for i in range(6):
                for job in ("a", "b", "c"):
                    service.ingest_flush(job, make_flush(i))
                service.pump(wait_for_batch=True)
            service.dispatcher.join()
            periods = {job: service.publisher.latest_period(job) for job in service.jobs}
            service.close()
            return periods

        assert run(0) == run(4)

    def test_backpressure_defers_when_saturated(self, online_config):
        service = PredictionService(
            ServiceConfig(
                session=SessionConfig(config=online_config), max_workers=1, max_pending=1
            )
        )
        # Make many jobs due at once; with a single slot most must be deferred.
        for job_index in range(8):
            service.ingest_flush(f"job-{job_index}", make_flush(0))
        # Slow the first evaluation down so the lone worker slot stays busy
        # while the pump loop visits the remaining sessions.
        first = service.session("job-0")
        original_detect = first.detect

        def slow_detect(**kwargs):
            import time as _time

            _time.sleep(0.05)
            return original_detect(**kwargs)

        first.detect = slow_detect
        service.pump()
        service.dispatcher.join()
        stats = service.dispatcher.stats
        assert stats.deferred > 0
        # Deferred sessions stay due: draining catches them all up.
        service.drain()
        assert not service.broker.due_sessions()
        assert service.dispatcher.stats.completed == 8
        service.close()

    def test_rate_limited_sessions_coalesce(self, online_config):
        service = PredictionService(
            ServiceConfig(
                session=SessionConfig(config=online_config, min_detection_interval=100.0)
            )
        )
        for i in range(5):
            service.ingest_flush("slow", make_flush(i))
            service.pump(wait_for_batch=True)
        # First flush evaluates; the rest (within 100 s of trace time) coalesce.
        assert service.session("slow").detections == 1
        assert service.session("slow").ingested_flushes == 5

    def test_failure_is_counted_and_raised(self, online_config):
        broker = FlushBroker(session_config=SessionConfig(config=online_config))
        session = broker.session("boom")
        session.ingest(make_flush(0))

        def explode(**kwargs):
            raise RuntimeError("injected")

        session.detect = explode
        dispatcher = DetectionDispatcher(broker)
        with pytest.raises(RuntimeError):
            dispatcher.pump()
        assert dispatcher.stats.failures == 1

    def test_reap_finished_releases_sessions(self, online_config):
        service = PredictionService(ServiceConfig(session=SessionConfig(config=online_config)))
        for job in ("done", "alive"):
            service.ingest_flush(job, make_flush(0))
        service.drain()
        service.finish_job("done")
        assert service.reap_finished() == ("done",)
        # The finished job left the broker; its last prediction is retained.
        assert service.jobs == ("alive",)
        assert service.publisher.latest("done") is not None
        # forget_predictions drops the published state as well.
        service.finish_job("alive")
        assert service.reap_finished(forget_predictions=True) == ("alive",)
        assert service.jobs == ()
        assert service.publisher.latest("alive") is None

    def test_reap_skips_finished_sessions_with_pending_data(self, online_config):
        service = PredictionService(ServiceConfig(session=SessionConfig(config=online_config)))
        service.ingest_flush("late", make_flush(0))
        service.finish_job("late")
        # Unevaluated data: the session must survive the reap, get evaluated,
        # and only then be released.
        assert service.reap_finished() == ()
        service.drain()
        assert service.reap_finished() == ("late",)

    def test_latency_window_is_bounded(self, online_config):
        service = PredictionService(
            ServiceConfig(session=SessionConfig(config=online_config), latency_window=3)
        )
        for i in range(6):
            service.ingest_flush("x", make_flush(i))
            service.pump(wait_for_batch=True)
        assert service.dispatcher.stats.completed == 6
        assert len(service.dispatcher.latencies()) == 3

    def test_latency_percentiles_recorded(self, online_config):
        service = PredictionService(ServiceConfig(session=SessionConfig(config=online_config)))
        for i in range(4):
            service.ingest_flush("x", make_flush(i))
            service.pump(wait_for_batch=True)
        assert len(service.dispatcher.latencies()) == 4
        p50 = service.dispatcher.latency_percentile(50.0)
        p99 = service.dispatcher.latency_percentile(99.0)
        assert p50 is not None and p99 is not None and p99 >= p50 >= 0.0

    def test_latency_percentile_empty_window_is_none(self, online_config):
        dispatcher = DetectionDispatcher(FlushBroker(session_config=SessionConfig(config=online_config)))
        for q in (0.0, 50.0, 100.0):
            assert dispatcher.latency_percentile(q) is None
        assert dispatcher.latencies() == ()

    def test_latency_percentile_extreme_quantiles_and_single_sample(self, online_config):
        service = PredictionService(ServiceConfig(session=SessionConfig(config=online_config)))
        service.ingest_flush("one", make_flush(0))
        service.pump(wait_for_batch=True)
        latencies = service.dispatcher.latencies()
        assert len(latencies) == 1
        only = latencies[0]
        # With a single sample every quantile collapses onto it.
        for q in (0.0, 1.0, 50.0, 99.0, 100.0):
            assert service.dispatcher.latency_percentile(q) == pytest.approx(only)
        # With several samples q=0/q=100 are the window extremes.
        for i in range(1, 5):
            service.ingest_flush("one", make_flush(i))
            service.pump(wait_for_batch=True)
        window = service.dispatcher.latencies()
        assert service.dispatcher.latency_percentile(0.0) == pytest.approx(min(window))
        assert service.dispatcher.latency_percentile(100.0) == pytest.approx(max(window))
        service.close()

    def test_pump_after_close_raises_cleanly(self, online_config):
        for max_workers in (0, 2):
            service = PredictionService(
                ServiceConfig(session=SessionConfig(config=online_config), max_workers=max_workers)
            )
            service.ingest_flush("x", make_flush(0))
            service.drain()
            service.close()
            assert service.dispatcher.closed
            service.ingest_flush("x", make_flush(1))  # ingestion still works...
            with pytest.raises(RuntimeError):  # ...but evaluation does not
                service.pump(wait_for_batch=True)
            # close is idempotent and join on a closed dispatcher is a no-op.
            service.close()
            service.dispatcher.join()

    def test_dispatcher_constructor_validation(self, online_config):
        broker = FlushBroker(session_config=SessionConfig(config=online_config))
        with pytest.raises(ValueError):
            DetectionDispatcher(broker, max_workers=-1)
        with pytest.raises(ValueError):
            DetectionDispatcher(broker, max_pending=0)
        with pytest.raises(ValueError):
            DetectionDispatcher(broker, latency_window=0)
