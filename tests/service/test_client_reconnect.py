"""Connection-loss behavior of :class:`~repro.client.ServiceClient`.

The contract: a dropped TCP connection is *transparent* for idempotent
control calls (``stats``, ``snapshot``, ``subscribe``, ``resize`` — the
client reconnects, re-handshakes, re-subscribes and retries once) and a
*typed, immediate* failure — :class:`~repro.exceptions.ConnectionLostError`,
never a hang, never a silent double-apply — for calls whose server-side
effect is unknowable after the drop (``submit``, ``pump``, ``drain``,
``restore``).
"""

from __future__ import annotations

import socket

import pytest

from repro.client import ServiceClient
from repro.core import FtioConfig
from repro.exceptions import ConnectionLostError
from repro.service import (
    PredictionService,
    ServiceConfig,
    SessionConfig,
    ThreadedGateway,
)

@pytest.fixture()
def service_config():
    return ServiceConfig(
        session=SessionConfig(
            config=FtioConfig(
                sampling_frequency=10.0,
                use_autocorrelation=False,
                compute_characterization=False,
            )
        ),
        max_workers=2,
    )


@pytest.fixture()
def gateway(service_config):
    with ThreadedGateway(PredictionService(service_config), own_engine=True) as gw:
        yield gw


@pytest.fixture()
def job_flushes():
    from repro.analysis.benchmark import synthetic_flush_streams

    return synthetic_flush_streams(1, flushes_per_job=6, requests_per_flush=8, seed=1)[
        "job-000"
    ]


def drop_connection(client: ServiceClient) -> None:
    """Sever the client's TCP connection out from under it (network fault)."""
    try:
        client._sock.shutdown(socket.SHUT_RDWR)
    except OSError:  # already torn down by the previous fault
        pass


class TestIdempotentRetry:
    def test_stats_survives_a_dropped_connection(self, gateway, job_flushes):
        with ServiceClient(gateway.host, gateway.port) as client:
            client.submit_flush("job-000", job_flushes[0])
            client.pump()
            before = client.stats()
            drop_connection(client)
            after = client.stats()  # transparent reconnect + retry
            assert after == before
            assert client.reconnects == 1

    def test_snapshot_survives_a_dropped_connection(self, gateway, job_flushes):
        with ServiceClient(gateway.host, gateway.port) as client:
            client.submit_flush("job-000", job_flushes[0])
            client.drain()
            drop_connection(client)
            state = client.snapshot()
            assert {s["job"] for s in state["sessions"]} == {"job-000"}
            assert client.reconnects == 1

    def test_reconnect_can_be_disabled(self, gateway):
        with ServiceClient(gateway.host, gateway.port, reconnect=False) as client:
            drop_connection(client)
            with pytest.raises(ConnectionLostError):
                client.stats()

    def test_server_gone_surfaces_typed_not_raw_oserror(self, service_config):
        # When the reconnect itself fails (server down), the retry contract
        # stays typed: ConnectionLostError, never a bare ConnectionRefusedError
        # out of socket.create_connection.
        gw = ThreadedGateway(PredictionService(service_config), own_engine=True).start()
        client = ServiceClient(gw.host, gw.port)
        gw.close()
        try:
            with pytest.raises(ConnectionLostError):
                client.stats()
        finally:
            client.close()

    def test_each_call_retries_at_most_once(self, gateway, monkeypatch):
        # If the *reconnected* socket dies too, the typed error surfaces
        # instead of an unbounded retry loop.
        with ServiceClient(gateway.host, gateway.port) as client:
            drop_connection(client)
            original = ServiceClient._reconnect

            def reconnect_then_drop(self):
                original(self)
                drop_connection(self)

            monkeypatch.setattr(ServiceClient, "_reconnect", reconnect_then_drop)
            with pytest.raises(ConnectionLostError):
                client.stats()


class TestHandshakeFailures:
    """A rejected Hello must never bind a dead socket or escape untyped."""

    @pytest.fixture()
    def token_gateway(self, service_config):
        engine = PredictionService(service_config)
        with ThreadedGateway(engine, own_engine=True, token=5) as gw:
            yield gw

    def test_rejected_hello_at_construction_raises_service_error(self, token_gateway):
        from repro.exceptions import ServiceError

        with pytest.raises(ServiceError, match="token"):
            ServiceClient(token_gateway.host, token_gateway.port, token=3)

    def test_reconnect_handshake_rejection_surfaces_typed(self, token_gateway):
        # Credential rotation mid-session: the server now rejects the Hello
        # of the transparent reconnect.  The retry contract stays typed —
        # ConnectionLostError, never the raw ServiceError/ProtocolError from
        # inside the handshake.
        client = ServiceClient(token_gateway.host, token_gateway.port, token=5)
        try:
            client._token = 3  # simulate rotated server credentials
            drop_connection(client)
            with pytest.raises(ConnectionLostError):
                client.stats()
            assert client.reconnects == 0
        finally:
            client._closed = True
            client._sock.close()

    def test_failed_handshake_never_rebinds_the_socket(self, token_gateway):
        # _connect must bind self._sock only after a *successful* handshake;
        # a rejected reconnect must not leave the client holding the fresh
        # -but-already-closed socket in place of the old one.
        client = ServiceClient(token_gateway.host, token_gateway.port, token=5)
        try:
            before = client._sock
            client._token = 3
            drop_connection(client)
            with pytest.raises(ConnectionLostError):
                client.stats()
            assert client._sock is before
        finally:
            client._closed = True
            client._sock.close()


class TestNonIdempotentTypedError:
    def test_submit_and_pump_raise_typed_error(self, gateway, job_flushes):
        with ServiceClient(gateway.host, gateway.port) as client:
            client.submit_flush("job-000", job_flushes[0])
            drop_connection(client)
            with pytest.raises(ConnectionLostError):
                client.submit_flush("job-000", job_flushes[1])
            # The failure poisons nothing permanently: the next idempotent
            # call reconnects, and the session's earlier data is intact.
            assert client.stats()["flushes"] == 1
            drop_connection(client)
            with pytest.raises(ConnectionLostError):
                client.pump()
            drop_connection(client)
            with pytest.raises(ConnectionLostError):
                client.drain()

    def test_restore_raises_typed_error(self, gateway, job_flushes):
        with ServiceClient(gateway.host, gateway.port) as client:
            client.submit_flush("job-000", job_flushes[0])
            client.drain()
            state = client.snapshot()
            drop_connection(client)
            with pytest.raises(ConnectionLostError):
                client.restore(state)


class TestSubscriptionReconnect:
    def test_mid_subscription_drop_is_transparent(
        self, gateway, job_flushes, service_config
    ):
        monitor = ServiceClient(gateway.host, gateway.port, name="monitor")
        try:
            monitor.subscribe(["job-000"])
            drop_connection(monitor)
            with ServiceClient(gateway.host, gateway.port, name="driver") as driver:
                for flush in job_flushes[:4]:
                    driver.submit_flush("job-000", flush)
                    driver.pump()
                # The monitor notices the dead socket inside the poll,
                # reconnects, re-subscribes, and keeps streaming.
                events = []
                for _ in range(10):
                    driver.pump()
                    events = monitor.poll_predictions(timeout=1.0, min_events=1)
                    if events:
                        break
                    driver.submit_flush("job-000", job_flushes[4])
            assert monitor.reconnects >= 1
            assert events and all(e.job == "job-000" for e in events)
        finally:
            monitor.close()

    def test_unsubscribed_drop_mid_poll_raises(self, gateway):
        # Without a subscription there is nothing to restore: the drop is a
        # real error, not something to silently paper over.
        with ServiceClient(gateway.host, gateway.port) as client:
            drop_connection(client)
            with pytest.raises(ConnectionLostError):
                client.poll_predictions(timeout=2.0)
