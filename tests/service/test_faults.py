"""Fault-injection tests: spool rotation, torn frames, dead shards, auth.

Everything here is about the service misbehaving-resistant paths: a writer
rotating the spool under a live tailer, a crash leaving a torn frame at a
rotation boundary, compaction shifting offsets, kill -9'd shards surfacing
as :class:`ShardCrashedError` instead of hangs, and the wire-level tenant
token rejecting misdirected streams.
"""

from __future__ import annotations

import pytest

from repro.core import FtioConfig
from repro.exceptions import ServiceError, ShardCrashedError, TraceFormatError
from repro.service import ServiceConfig, SessionConfig, ShardedService
from repro.trace.framing import (
    FrameReader,
    FrameWriter,
    compact_spool,
    encode_frame,
    iter_frames,
)
from repro.trace.jsonl import FlushRecord
from repro.trace.record import IORequest


def make_flush(index: int) -> FlushRecord:
    start = index * 8.0
    requests = tuple(
        IORequest(rank=r, start=start + r * 0.05, end=start + 0.5, nbytes=4096) for r in range(3)
    )
    return FlushRecord(flush_index=index, timestamp=start + 1.0, requests=requests)


@pytest.fixture(scope="module")
def service_config():
    return ServiceConfig(
        session=SessionConfig(
            config=FtioConfig(
                sampling_frequency=10.0,
                use_autocorrelation=False,
                compute_characterization=False,
            )
        )
    )


class TestSpoolRotation:
    def test_reader_tails_across_explicit_rotation(self, tmp_path):
        spool = tmp_path / "spool.fts"
        writer = FrameWriter(spool, job="a")
        reader = FrameReader(spool)
        seen: list[int] = []
        for i in range(3):
            writer.write(make_flush(i))
        seen += [f.flush.flush_index for f in reader.poll()]
        rotated = writer.rotate()
        assert rotated is not None and rotated.exists()
        for i in range(3, 6):
            writer.write(make_flush(i))
        seen += [f.flush.flush_index for f in reader.poll()]
        # No drops, no duplicates, order preserved across the boundary.
        assert seen == list(range(6))
        assert reader.resyncs == 0

    def test_max_bytes_auto_rotation_never_splits_a_frame(self, tmp_path):
        spool = tmp_path / "spool.fts"
        frame_size = len(encode_frame(make_flush(0), job="a"))
        writer = FrameWriter(spool, job="a", max_bytes=3 * frame_size)
        reader = FrameReader(spool)
        seen: list[int] = []
        for i in range(10):
            writer.write(make_flush(i))
            seen += [f.flush.flush_index for f in reader.poll()]
        assert writer.rotations >= 2
        assert seen == list(range(10))
        assert reader.resyncs == 0
        # Every rotated generation holds only whole frames.
        for generation in sorted(tmp_path.glob("spool.fts.*")):
            assert list(iter_frames(generation))

    def test_frame_completed_just_before_rotation_is_not_lost(self, tmp_path):
        """The reader polled mid-frame; the writer completes it and rotates
        before the next poll.  The retained handle must still drain it."""
        spool = tmp_path / "spool.fts"
        frame = encode_frame(make_flush(0), job="torn")
        spool.write_bytes(frame[:10])
        reader = FrameReader(spool)
        assert reader.poll() == []  # partial frame parked
        with spool.open("ab") as handle:
            handle.write(frame[10:])
        writer = FrameWriter(spool, job="torn")
        writer.rotate()
        writer.write(make_flush(1))
        polled = reader.poll()
        assert [f.flush.flush_index for f in polled] == [0, 1]
        assert reader.resyncs == 0

    def test_torn_frame_at_rotation_boundary_resyncs(self, tmp_path):
        """A writer crash leaves a torn frame; rotation happens anyway.  The
        reader must discard the orphan bytes instead of gluing them onto the
        next generation (which would mis-frame everything after)."""
        spool = tmp_path / "spool.fts"
        good = encode_frame(make_flush(0), job="a")
        torn = encode_frame(make_flush(1), job="a")
        spool.write_bytes(good + torn[: len(torn) // 2])
        reader = FrameReader(spool)
        assert [f.flush.flush_index for f in reader.poll()] == [0]
        assert reader.skipped_bytes == 0
        writer = FrameWriter(spool, job="a")
        writer.rotate()
        writer.write(make_flush(2))
        polled = reader.poll()
        assert [f.flush.flush_index for f in polled] == [2]
        assert reader.resyncs == 1
        assert reader.skipped_bytes == len(torn) // 2

    def test_several_rotations_between_polls_chase_all_generations(self, tmp_path):
        """Many rotations can land between two polls; the reader must chase
        every intermediate generation by inode, dropping nothing."""
        spool = tmp_path / "spool.fts"
        frame_size = len(encode_frame(make_flush(0), job="a"))
        writer = FrameWriter(spool, job="a", max_bytes=2 * frame_size)
        reader = FrameReader(spool)
        for i in range(4):
            writer.write(make_flush(i))
        assert [f.flush.flush_index for f in reader.poll()] == [0, 1, 2, 3]
        # No polls while the writer rotates repeatedly.
        for i in range(4, 12):
            writer.write(make_flush(i))
        assert writer.rotations >= 4
        assert [f.flush.flush_index for f in reader.poll()] == list(range(4, 12))
        assert reader.resyncs == 0

    def test_position_resume_survives_rotation(self, tmp_path):
        """A snapshot records the reader's (inode, offset); a reader resumed
        from it after rotations replays exactly the unseen frames."""
        spool = tmp_path / "spool.fts"
        frame_size = len(encode_frame(make_flush(0), job="a"))
        writer = FrameWriter(spool, job="a", max_bytes=3 * frame_size)
        reader = FrameReader(spool)
        for i in range(2):
            writer.write(make_flush(i))
        assert len(reader.poll()) == 2
        checkpoint = reader.position
        assert checkpoint["inode"] is not None and checkpoint["offset"] == 2 * frame_size
        for i in range(2, 9):  # rotates at least twice past the checkpoint
            writer.write(make_flush(i))
        assert writer.rotations >= 2
        resumed = FrameReader(spool, position=checkpoint)
        assert [f.flush.flush_index for f in resumed.poll()] == list(range(2, 9))
        assert resumed.resyncs == 0
        # A checkpoint pointing at a deleted generation cannot be honoured
        # byte-exactly: the reader restarts from the live file and counts it.
        for generation in tmp_path.glob("spool.fts.*"):
            generation.unlink()
        orphaned = FrameReader(spool, position=checkpoint)
        polled = orphaned.poll()
        assert [f.flush.flush_index for f in polled] == [
            f.flush.flush_index for f in iter_frames(spool)
        ]

    def test_copy_truncate_rotation_resyncs_to_start(self, tmp_path):
        spool = tmp_path / "spool.fts"
        writer = FrameWriter(spool, job="a")
        reader = FrameReader(spool)
        writer.write(make_flush(0))
        assert len(reader.poll()) == 1
        spool.write_bytes(b"")  # copy-truncate style restart
        # A regular poll observes the shrink (size < consumed offset) and
        # resets to the start of the restarted file.
        assert reader.poll() == []
        assert reader.offset == 0
        fresh = FrameWriter(spool, job="a")
        fresh.write(make_flush(1))
        assert [f.flush.flush_index for f in reader.poll()] == [1]

    def test_restarted_writer_continues_generation_numbering(self, tmp_path):
        """A writer restart must not os.replace the live file onto a retained
        generation — numbering continues from the highest existing suffix."""
        spool = tmp_path / "spool.fts"
        first = FrameWriter(spool, job="a")
        first.write(make_flush(0))
        first.rotate()
        first.write(make_flush(1))
        restarted = FrameWriter(spool, job="a")  # e.g. after a writer crash
        assert restarted.rotations == 1
        restarted.rotate()
        restarted.write(make_flush(2))
        # Generation .1 (flush 0) survived; the restart rotated to .2.
        assert [f.flush.flush_index for f in iter_frames(spool.with_name("spool.fts.1"))] == [0]
        assert [f.flush.flush_index for f in iter_frames(spool.with_name("spool.fts.2"))] == [1]
        reader = FrameReader(spool)
        assert [f.flush.flush_index for f in reader.poll()] == [0, 1, 2]

    def test_position_excludes_partially_read_trailing_frame(self, tmp_path):
        """A poll mid-append buffers a torn frame; the recorded position must
        point at the last frame boundary so a resumed reader re-decodes the
        torn frame from its first byte instead of mis-framing."""
        spool = tmp_path / "spool.fts"
        whole = encode_frame(make_flush(0), job="a")
        torn = encode_frame(make_flush(1), job="a")
        spool.write_bytes(whole + torn[: len(torn) // 2])
        reader = FrameReader(spool)
        assert [f.flush.flush_index for f in reader.poll()] == [0]
        checkpoint = reader.position
        assert checkpoint["offset"] == len(whole)
        with spool.open("ab") as handle:
            handle.write(torn[len(torn) // 2 :])
        resumed = FrameReader(spool, position=checkpoint)
        assert [f.flush.flush_index for f in resumed.poll()] == [1]

    def test_rotate_requires_a_path_backed_writer(self):
        import io

        writer = FrameWriter(io.BytesIO(), job="a")
        with pytest.raises(TraceFormatError):
            writer.rotate()
        with pytest.raises(TraceFormatError):
            FrameWriter(io.BytesIO(), job="a", max_bytes=100)


class TestSpoolCompaction:
    def test_compaction_drops_prefix_and_reader_rebases(self, tmp_path):
        spool = tmp_path / "spool.fts"
        writer = FrameWriter(spool, job="a")
        reader = FrameReader(spool)
        for i in range(4):
            writer.write(make_flush(i))
        assert len(reader.poll()) == 4
        consumed = reader.offset
        removed = compact_spool(spool, up_to=consumed)
        assert removed == consumed
        assert spool.stat().st_size == 0
        reader.rebase(removed)
        writer.write(make_flush(4))
        assert [f.flush.flush_index for f in reader.poll()] == [4]
        # The compacted file is still a valid spool.
        assert [f.flush.flush_index for f in iter_frames(spool)] == [4]

    def test_partial_compaction_keeps_unconsumed_tail(self, tmp_path):
        spool = tmp_path / "spool.fts"
        writer = FrameWriter(spool, job="a")
        sizes = [writer.write(make_flush(i)) for i in range(3)]
        removed = compact_spool(spool, up_to=sizes[0])
        assert removed == sizes[0]
        assert [f.flush.flush_index for f in iter_frames(spool)] == [1, 2]

    def test_compaction_validates_offsets(self, tmp_path):
        spool = tmp_path / "spool.fts"
        FrameWriter(spool, job="a").write(make_flush(0))
        assert compact_spool(spool, up_to=0) == 0
        with pytest.raises(TraceFormatError):
            compact_spool(spool, up_to=-1)
        with pytest.raises(TraceFormatError):
            compact_spool(spool, up_to=10**9)
        assert compact_spool(tmp_path / "missing.fts", up_to=100) == 0


class TestShardFaults:
    def test_dead_shard_surfaces_as_shard_crashed_error(self, service_config):
        service = ShardedService(2, service_config)
        try:
            for job_index in range(4):
                service.ingest_flush(f"job-{job_index}", make_flush(0))
            service.pump()
            victim = service.shard_for("job-0")
            service.kill_shard(victim)
            assert victim in service.dead_shards()
            with pytest.raises(ShardCrashedError) as failure:
                for _ in range(64):  # the socket buffer may absorb a few sends
                    service.ingest_flush("job-0", make_flush(1))
            assert failure.value.shard == victim
            # The surviving shards keep serving.
            survivors = [j for j in service.jobs]
            assert all(service.shard_for(job) != victim for job in survivors)
            assert service.pump() >= 0
        finally:
            service.close()

    def test_revive_refuses_live_shard(self, service_config):
        service = ShardedService(2, service_config)
        try:
            with pytest.raises(ServiceError):
                service.revive_shard(0)
        finally:
            service.close()

    def test_shard_side_error_propagates_without_killing_the_shard(self, service_config):
        service = ShardedService(1, service_config)
        try:
            with pytest.raises(TraceFormatError):  # rejected router-side
                service.restore_state({"snapshot_version": 999, "sessions": [], "publisher": {}})
            bad = {
                "snapshot_version": 1,
                "sessions": [{"job": "x"}],  # malformed session state
                "publisher": {"latest": {}, "latest_period": {}},
            }
            with pytest.raises(ServiceError):
                service.restore_state(bad)
            # The shard survived the failed op and still serves.
            service.ingest_flush("ok", make_flush(0))
            service.pump()
            assert service.dead_shards() == ()
            assert "ok" in service.jobs
        finally:
            service.close()

    def test_failed_op_on_one_shard_keeps_control_pipes_aligned(self, service_config):
        """A per-shard op failure inside a broadcast must not leave other
        shards' replies queued — the next op would read stale responses."""
        service = ShardedService(4, service_config)
        try:
            jobs = [f"job-{j}" for j in range(8)]
            for job in jobs:
                service.ingest_flush(job, make_flush(0))
            service.drain()
            victim_job = jobs[0]
            bad = service.snapshot_state()
            for session in bad["sessions"]:
                if session["job"] == victim_job:
                    session["predictor"] = {"malformed": True}  # one shard will fail
            with pytest.raises(ServiceError):
                service.restore_state(bad)
            # Every later broadcast still pairs requests with fresh replies.
            assert service.dead_shards() == ()
            stats = service.broker_stats
            assert stats.jobs == len(jobs)
            assert service.pump() == 0
            assert sorted(service.jobs) == jobs
        finally:
            service.close()

    def test_close_is_idempotent_and_survives_dead_shards(self, service_config):
        service = ShardedService(2, service_config)
        service.kill_shard(0)
        service.close()
        service.close()
        assert service.dead_shards() == (0, 1)


class TestWireAuth:
    def test_router_rejects_unauthenticated_stream(self, service_config):
        service = ShardedService(1, service_config, token=4)
        try:
            flush = make_flush(0)
            with pytest.raises(TraceFormatError):
                service.feed_bytes(encode_frame(flush, job="a"))  # version 0: no token
            with pytest.raises(TraceFormatError):
                service.feed_bytes(encode_frame(flush, job="a", token=11))
        finally:
            service.close()

    def test_router_stamps_and_accepts_its_token(self, service_config):
        service = ShardedService(1, service_config, token=4)
        try:
            assert service.token == 4
            routed = service.feed_bytes(encode_frame(make_flush(0), job="a", token=4))
            assert routed == 1
            service.ingest_flush("b", make_flush(0))
            service.drain()
            assert sorted(service.jobs) == ["a", "b"]
        finally:
            service.close()
