"""Multi-host federation: remote shards over TCP, liveness, fault paths.

A ``repro-shard`` worker launched as a *separate process* dials home to the
router's :class:`~repro.service.transport.ShardListener` over 127.0.0.1 —
the same wire topology a worker on another machine uses — and must be
indistinguishable from a forked local shard: bit-identical predictions, the
same stats schema, the same chaos-survival guarantees (kill -9 detected as
connection loss, hung-but-connected workers convicted by heartbeat timeout,
bad-token dials rejected without wedging the router).
"""

from __future__ import annotations

import os
import signal
import socket
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.analysis.benchmark import synthetic_flush_streams
from repro.core import FtioConfig
from repro.exceptions import ShardCrashedError
from repro.service import (
    PredictionService,
    ServiceConfig,
    SessionConfig,
    ShardedService,
    ThreadedGateway,
)
from repro.service import protocol as proto
from repro.service.transport import ShardListener, config_from_wire, config_to_wire

N_JOBS = 8
REPO_SRC = str(Path(__file__).resolve().parents[2] / "src")


def make_config(**overrides) -> ServiceConfig:
    return ServiceConfig(
        session=SessionConfig(
            config=FtioConfig(
                sampling_frequency=10.0,
                use_autocorrelation=False,
                compute_characterization=False,
            )
        ),
        max_workers=2,
        **overrides,
    )


@pytest.fixture(scope="module")
def streams():
    return synthetic_flush_streams(
        N_JOBS, flushes_per_job=6, requests_per_flush=16, seed=11
    )


def single_process_periods(streams) -> dict:
    service = PredictionService(make_config())
    try:
        for job, flushes in streams.items():
            for flush in flushes:
                service.ingest_flush(job, flush)
                service.pump(wait_for_batch=True)
        service.drain()
        return {job: service.publisher.latest_period(job) for job in streams}
    finally:
        service.close()


def free_port() -> int:
    probe = socket.socket()
    probe.bind(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()
    return port


def launch_worker(port: int, *extra: str) -> subprocess.Popen:
    env = dict(os.environ)
    env["PYTHONPATH"] = REPO_SRC + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.Popen(
        [sys.executable, "-m", "repro.shard", "--connect", f"127.0.0.1:{port}", *extra],
        env=env,
        stderr=subprocess.PIPE,
    )


def reap(worker: subprocess.Popen) -> None:
    if worker.poll() is None:
        worker.kill()
    worker.wait()


def feed_and_drain(service: ShardedService, streams) -> dict:
    for job, flushes in streams.items():
        for flush in flushes:
            service.ingest_flush(job, flush)
            service.pump()
    service.drain()
    return {job: service.publisher.latest_period(job) for job in streams}


class TestRemoteShardParity:
    """A dial-home worker serves traffic bit-identical to local topologies."""

    def test_remote_topology_matches_local_and_single_process(self, streams):
        expected = single_process_periods(streams)

        with ShardedService(2, make_config()) as local:
            local_periods = feed_and_drain(local, streams)

        port = free_port()
        worker = launch_worker(port, "--token", "7", "--name", "parity-w0")
        try:
            with ShardedService(
                2,
                make_config(shard_port=port, token=7),
                placement=["remote", "local"],
            ) as fed:
                details = fed.shard_details()
                assert details[0]["remote"] is True
                assert details[0]["worker"]["name"] == "parity-w0"
                assert details[1]["remote"] is False
                remote_periods = feed_and_drain(fed, streams)
            worker.wait(timeout=10)
        finally:
            reap(worker)

        for job in streams:
            assert local_periods[job] == expected[job], job
            assert remote_periods[job] == expected[job], job

    def test_remote_shard_serves_reads_and_heartbeats(self, streams):
        port = free_port()
        worker = launch_worker(port, "--name", "reads-w0")
        try:
            with ShardedService(
                2,
                make_config(shard_port=port, metrics=True),
                placement=["remote", "local"],
            ) as fed:
                for job, flushes in streams.items():
                    for flush in flushes[:2]:
                        fed.ingest_flush(job, flush)
                fed.pump()
                rtts = fed.heartbeat()
                assert set(rtts) == {0, 1}
                assert all(rtt is not None and rtt >= 0.0 for rtt in rtts.values())
                read = fed.read_stats()
                control = fed.stats()
                assert read["flushes"] == control["flushes"]
                assert read["shards"] == control["shards"] == 2
                assert set(read) == set(control)
                metrics = fed.read_metrics_snapshot()
                assert "repro_shard_alive" in metrics
                assert "repro_heartbeat_rtt_seconds" in metrics
        finally:
            reap(worker)


class TestRemoteFaults:
    def test_kill9_remote_is_detected_and_revived(self, streams):
        """SIGKILL on the remote worker surfaces as connection loss; the
        revive falls back to a local fork when no replacement dials home."""
        port = free_port()
        worker = launch_worker(port, "--name", "victim")
        try:
            with ShardedService(
                2,
                make_config(shard_port=port),
                placement=["remote", "local"],
            ) as fed:
                for job, flushes in streams.items():
                    for flush in flushes[:3]:
                        fed.ingest_flush(job, flush)
                fed.pump()
                snapshot = fed.snapshot_state()
                fed.kill_shard(0)
                worker.wait(timeout=10)
                with pytest.raises(ShardCrashedError):
                    for job, flushes in streams.items():
                        fed.ingest_flush(job, flushes[3])
                        fed.pump()
                assert 0 in fed.dead_shards()
                # Nothing re-dials, so the slot degrades to a local fork.
                fed._remote_timeout = 0.2
                with pytest.warns(RuntimeWarning, match="spawning it locally"):
                    fed.revive_shard(0, state=snapshot)
                assert fed.dead_shards() == ()
                assert fed.shard_details()[0]["remote"] is False
                for job, flushes in streams.items():
                    for flush in flushes[3:]:
                        fed.ingest_flush(job, flush)
                fed.drain()
                for job in streams:
                    assert fed.publisher.latest_period(job) is not None
        finally:
            reap(worker)

    def test_kill9_remote_revives_onto_replacement_worker(self, streams):
        """With a second worker already parked on the listener, the revive
        adopts it — the 'revive on another host' path."""
        port = free_port()
        first = launch_worker(port, "--name", "gen-1")
        second = None
        try:
            with ShardedService(
                2,
                make_config(shard_port=port),
                placement=["remote", "local"],
            ) as fed:
                assert fed.shard_details()[0]["worker"]["name"] == "gen-1"
                for job, flushes in streams.items():
                    fed.ingest_flush(job, flushes[0])
                fed.pump()
                snapshot = fed.snapshot_state()
                # The replacement parks in the pending queue before the kill.
                second = launch_worker(port, "--name", "gen-2")
                deadline = time.monotonic() + 30.0
                while (
                    fed._listener._pending.qsize() == 0
                    and time.monotonic() < deadline
                ):
                    time.sleep(0.05)
                fed.kill_shard(0)
                first.wait(timeout=10)
                with pytest.raises(ShardCrashedError):
                    for job, flushes in streams.items():
                        fed.ingest_flush(job, flushes[1])
                        fed.pump()
                fed.revive_shard(0, state=snapshot)
                detail = fed.shard_details()[0]
                assert detail["remote"] is True
                assert detail["worker"]["name"] == "gen-2"
                for job, flushes in streams.items():
                    for flush in flushes[1:]:
                        fed.ingest_flush(job, flush)
                fed.drain()
                for job in streams:
                    assert fed.publisher.latest_period(job) is not None
        finally:
            reap(first)
            if second is not None:
                reap(second)

    def test_kill9_remote_mid_reshard_recovers(self, streams):
        """A remote worker SIGKILL'd *during* a reshard must not wedge the
        migration: the reshard aborts cleanly, the shard is convicted, and a
        revive restores service."""
        port = free_port()
        worker = launch_worker(port, "--name", "mid-reshard")
        try:
            with ShardedService(
                2,
                make_config(shard_port=port),
                placement=["remote", "local"],
            ) as fed:
                for job, flushes in streams.items():
                    fed.ingest_flush(job, flushes[0])
                fed.pump()
                snapshot = fed.snapshot_state()

                def kill_at_parked(phase: str) -> None:
                    if phase == "parked":
                        os.kill(worker.pid, signal.SIGKILL)
                        worker.wait(timeout=10)

                with pytest.raises(ShardCrashedError):
                    fed.reshard(3, on_phase=kill_at_parked)
                assert 0 in fed.dead_shards()
                fed._remote_timeout = 0.2
                with pytest.warns(RuntimeWarning, match="spawning it locally"):
                    fed.revive_shard(0, state=snapshot)
                for job, flushes in streams.items():
                    for flush in flushes[1:]:
                        fed.ingest_flush(job, flush)
                fed.drain()
                for job in streams:
                    assert fed.publisher.latest_period(job) is not None
        finally:
            reap(worker)

    def test_heartbeat_convicts_hung_but_connected_worker(self, streams):
        """SIGSTOP freezes the worker without dropping its sockets: only the
        heartbeat timeout can tell it from a healthy-but-idle shard."""
        port = free_port()
        worker = launch_worker(port, "--name", "wedged")
        try:
            with ShardedService(
                2,
                # Wide enough that a loaded CI box cannot convict a merely
                # slow shard; the stopped worker never answers regardless.
                make_config(shard_port=port, heartbeat_timeout=5.0),
                placement=["remote", "local"],
            ) as fed:
                healthy = fed.heartbeat(timeout=30.0)
                assert set(healthy) == {0, 1}
                assert healthy[0] is not None
                os.kill(worker.pid, signal.SIGSTOP)
                try:
                    rtts = fed.heartbeat()
                    assert rtts[0] is None  # convicted by timeout...
                    assert rtts[1] is not None  # ...alone
                    assert 0 in fed.dead_shards()
                finally:
                    os.kill(worker.pid, signal.SIGCONT)
        finally:
            reap(worker)

    def test_bad_token_dial_home_is_rejected_without_wedging(self, streams):
        port = free_port()
        bad = launch_worker(port, "--token", "3", "--name", "intruder")
        try:
            with ShardedService(
                2,
                make_config(shard_port=port, token=7),
                placement=["local", "local"],
            ) as fed:
                # The intruder is rejected at the listener's Hello...
                assert bad.wait(timeout=30) == 1
                stderr = bad.stderr.read().decode()
                assert "unauthorized" in stderr
                deadline = time.monotonic() + 10.0
                while fed._listener.rejected == 0 and time.monotonic() < deadline:
                    time.sleep(0.05)
                assert fed._listener.rejected >= 1
                # ...and the router keeps serving as if nothing happened.
                for job, flushes in streams.items():
                    fed.ingest_flush(job, flushes[0])
                fed.pump()
                assert fed.stats()["flushes"] == N_JOBS
                assert fed.heartbeat()[0] is not None
        finally:
            reap(bad)

    def test_worker_cli_rejects_malformed_connect(self):
        from repro.shard import main

        with pytest.raises(SystemExit):
            main(["--connect", "no-port-here"])

    def test_worker_gives_up_after_retries(self):
        from repro.shard import main

        port = free_port()  # nothing listens on it
        rc = main(
            ["--connect", f"127.0.0.1:{port}", "--retries", "2", "--retry-delay", "0.05"]
        )
        assert rc == 1


class TestReshardPlacement:
    @staticmethod
    def _grow_mid_stream(streams, config, placement) -> dict:
        with ShardedService(1, config, placement=["local"]) as fed:
            for job, flushes in streams.items():
                for flush in flushes[:3]:
                    fed.ingest_flush(job, flush)
            fed.pump()
            summary = fed.reshard(2, placement=placement)
            assert summary["to_shards"] == 2
            for job, flushes in streams.items():
                for flush in flushes[3:]:
                    fed.ingest_flush(job, flush)
            fed.drain()
            details = fed.shard_details()
            periods = {job: fed.publisher.latest_period(job) for job in streams}
            return {"details": details, "periods": periods}

    def test_grow_onto_remote_worker_mid_stream(self, streams):
        """Growing onto a dial-home worker is bit-identical to growing onto
        a local fork at the same point of the same stream."""
        local = self._grow_mid_stream(
            streams, make_config(), ["local", "local"]
        )
        port = free_port()
        worker = launch_worker(port, "--name", "grown")
        try:
            remote = self._grow_mid_stream(
                streams, make_config(shard_port=port), ["local", "remote"]
            )
        finally:
            reap(worker)
        assert remote["details"][1]["remote"] is True
        assert remote["details"][1]["worker"]["name"] == "grown"
        assert local["details"][1]["remote"] is False
        for job in streams:
            assert remote["periods"][job] == local["periods"][job], job
            assert remote["periods"][job] is not None

    def test_placement_validation(self):
        with pytest.raises(ValueError, match="shard_port"):
            ShardedService(1, make_config(), placement=["remote"])
        with pytest.raises(ValueError, match="one entry per shard"):
            ShardedService(2, make_config(), placement=["local"])
        with pytest.raises(ValueError, match="'local' or 'remote'"):
            ShardedService(1, make_config(), placement=["cloud"])


class TestConfigWire:
    def test_round_trip_strips_host_local_fields(self):
        config = make_config(
            ring_bytes=1 << 20, ops_port=9000, shard_port=9400, token=5
        )
        wire = config_to_wire(config)
        assert "ops_port" not in wire and "shard_port" not in wire
        rebuilt = config_from_wire(wire)
        assert rebuilt.ring_bytes == 0  # remote = framed TCP, never a ring
        assert rebuilt.ops_port is None and rebuilt.shard_port is None
        assert rebuilt.token == 5
        assert rebuilt.session.config.sampling_frequency == 10.0
        assert rebuilt.max_workers == config.max_workers

    def test_unknown_wire_keys_are_ignored(self):
        wire = config_to_wire(make_config())
        wire["from_the_future"] = True
        wire["session"]["also_new"] = 1
        rebuilt = config_from_wire(wire)
        assert rebuilt.session.config.sampling_frequency == 10.0

    def test_listener_rejects_non_handshake_first_message(self):
        with ShardListener() as listener:
            sock = socket.create_connection((listener.host, listener.port))
            try:
                sock.sendall(proto.encode_message(proto.Stats()))
                reply = proto.decode_message(_recv_envelope(sock))
                assert isinstance(reply, proto.Error)
                assert reply.code == "protocol"
            finally:
                sock.close()
            # The counter bumps on the accept thread just after the reply is
            # sent — give the scheduler a beat before asserting.
            deadline = time.monotonic() + 5.0
            while listener.rejected == 0 and time.monotonic() < deadline:
                time.sleep(0.01)
            assert listener.rejected >= 1


def _recv_envelope(sock: socket.socket) -> bytes:
    header = b""
    while len(header) < proto._ENVELOPE.size:
        chunk = sock.recv(proto._ENVELOPE.size - len(header))
        assert chunk, "listener closed before replying"
        header += chunk
    _, _, length = proto._ENVELOPE.unpack(header)
    body = b""
    while len(body) < length:
        chunk = sock.recv(length - len(body))
        assert chunk
        body += chunk
    return header + body


class TestGatewayOverFederation:
    def test_gateway_reads_and_events_come_from_shards(self, streams):
        from repro.client import ServiceClient

        port = free_port()
        worker = launch_worker(port, "--name", "gw-w0")
        try:
            engine = ShardedService(
                2,
                make_config(shard_port=port, metrics=True),
                placement=["remote", "local"],
            )
            with ThreadedGateway(engine, own_engine=True) as gw:
                with ServiceClient(gw.host, gw.port, name="fed-client") as client:
                    client.subscribe()
                    for job, flushes in streams.items():
                        client.submit_flush(job, flushes[0])
                    client.pump()
                    stats = client.stats()
                    assert stats["flushes"] == N_JOBS
                    assert stats["shards"] == 2
                    events = client.poll_predictions(timeout=10.0, min_events=1)
                    assert events
                    assert all(event.job in streams for event in events)
        finally:
            reap(worker)
