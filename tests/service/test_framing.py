"""Unit tests for the length-prefixed flush-frame codec."""

from __future__ import annotations

import socket

import pytest

from repro.exceptions import TraceFormatError
from repro.trace.framing import (
    FrameDecoder,
    FrameReader,
    FrameWriter,
    encode_frame,
    iter_frames,
)
from repro.trace.jsonl import FlushRecord
from repro.trace.record import IORequest


def make_flush(index: int = 0, *, n_requests: int = 3, metadata: dict | None = None) -> FlushRecord:
    requests = tuple(
        IORequest(rank=r, start=index * 10.0 + r, end=index * 10.0 + r + 0.5, nbytes=1024)
        for r in range(n_requests)
    )
    return FlushRecord(
        flush_index=index,
        timestamp=index * 10.0 + n_requests,
        requests=requests,
        metadata=dict(metadata or {}),
    )


class TestFrameCodec:
    @pytest.mark.parametrize("payload_format", ["json", "msgpack"])
    def test_round_trip(self, payload_format):
        flush = make_flush(metadata={"app": "x", "ranks": 8})
        data = encode_frame(flush, job="job-a", payload_format=payload_format)
        decoder = FrameDecoder()
        decoder.feed(data)
        frames = list(decoder.frames())
        assert len(frames) == 1
        assert frames[0].job == "job-a"
        assert frames[0].payload_format == payload_format
        assert frames[0].flush == flush
        assert decoder.buffered_bytes == 0

    def test_multiple_jobs_interleaved(self):
        decoder = FrameDecoder()
        for i in range(6):
            decoder.feed(encode_frame(make_flush(i), job=f"job-{i % 3}"))
        frames = list(decoder.frames())
        assert [f.job for f in frames] == [f"job-{i % 3}" for i in range(6)]
        assert [f.flush.flush_index for f in frames] == list(range(6))

    def test_byte_by_byte_feed(self):
        flush = make_flush()
        data = encode_frame(flush, job="drip")
        decoder = FrameDecoder()
        seen = []
        for i in range(len(data)):
            decoder.feed(data[i : i + 1])
            seen.extend(decoder.frames())
            if i < len(data) - 1:
                assert not seen, "no frame may complete before its last byte"
        assert len(seen) == 1
        assert seen[0].flush == flush

    def test_partial_trailing_frame_stays_buffered(self):
        first = encode_frame(make_flush(0), job="a")
        second = encode_frame(make_flush(1), job="a")
        decoder = FrameDecoder()
        decoder.feed(first + second[: len(second) // 2])
        assert len(list(decoder.frames())) == 1
        assert decoder.buffered_bytes > 0
        decoder.feed(second[len(second) // 2 :])
        assert len(list(decoder.frames())) == 1
        assert decoder.buffered_bytes == 0

    def test_bad_magic_rejected(self):
        decoder = FrameDecoder()
        decoder.feed(b"NOPE" + b"\x00" * 16)
        with pytest.raises(TraceFormatError):
            list(decoder.frames())

    def test_unknown_payload_format_rejected(self):
        with pytest.raises(TraceFormatError):
            encode_frame(make_flush(), job="a", payload_format="xml")

    def test_corrupt_format_code_rejected(self):
        data = bytearray(encode_frame(make_flush(), job="a"))
        data[4] = 0x7F  # payload-format byte
        decoder = FrameDecoder()
        decoder.feed(bytes(data))
        with pytest.raises(TraceFormatError):
            list(decoder.frames())


class TestSpoolFile:
    def test_writer_appends_and_iter_frames_reads_all(self, tmp_path):
        path = tmp_path / "spool.fts"
        writer = FrameWriter(path, payload_format="msgpack")
        for i in range(4):
            writer.write(make_flush(i), job=f"job-{i % 2}")
        assert writer.frames_written == 4
        frames = list(iter_frames(path))
        assert [f.job for f in frames] == ["job-0", "job-1", "job-0", "job-1"]

    def test_tail_growing_file(self, tmp_path):
        path = tmp_path / "spool.fts"
        writer = FrameWriter(path, job="only")
        reader = FrameReader(path)
        assert reader.poll() == []
        writer.write(make_flush(0))
        assert [f.flush.flush_index for f in reader.poll()] == [0]
        # Nothing new: the poll is cheap and empty.
        assert reader.poll() == []
        writer.write(make_flush(1))
        writer.write(make_flush(2))
        assert [f.flush.flush_index for f in reader.poll()] == [1, 2]

    def test_tail_survives_partial_frame(self, tmp_path):
        path = tmp_path / "spool.fts"
        frame = encode_frame(make_flush(0), job="torn")
        path.write_bytes(frame[: len(frame) - 5])
        reader = FrameReader(path)
        assert reader.poll() == []
        with path.open("ab") as handle:
            handle.write(frame[len(frame) - 5 :])
        assert len(reader.poll()) == 1

    def test_iter_frames_rejects_trailing_garbage(self, tmp_path):
        path = tmp_path / "spool.fts"
        path.write_bytes(encode_frame(make_flush(0), job="a") + b"FTS1\x01\x00")
        with pytest.raises(TraceFormatError):
            list(iter_frames(path))

    def test_writer_requires_job(self, tmp_path):
        writer = FrameWriter(tmp_path / "spool.fts")
        with pytest.raises(TraceFormatError):
            writer.write(make_flush(0))


class TestSocketPair:
    def test_frames_cross_a_socket(self):
        left, right = socket.socketpair()
        try:
            sender = FrameWriter(left.makefile("wb"), job="sock-job")
            flushes = [make_flush(i) for i in range(3)]
            for flush in flushes:
                sender.write(flush)
            left.shutdown(socket.SHUT_WR)
            decoder = FrameDecoder()
            while True:
                chunk = right.recv(64)
                if not chunk:
                    break
                decoder.feed(chunk)
            received = list(decoder.frames())
            assert [f.flush for f in received] == flushes
            assert all(f.job == "sock-job" for f in received)
        finally:
            left.close()
            right.close()
