"""Property-based tests of the FTS1 frame codec (hypothesis).

The codec sits under every byte the streaming service ingests, so it gets
the adversarial treatment: arbitrary job ids, payloads, formats and flag
nibbles must survive encode→decode bit-exactly through any chunking, and
corrupting or truncating a valid frame must end in a clean
:class:`TraceFormatError` (or bytes parked as incomplete) — never in a
silently mis-framed stream.

These properties caught a real bug while being written: the original decoder
hard-rejected any non-zero flags byte, so a version-1 frame carrying a
tenant/auth token nibble could never round-trip.  The decoder is now
version-aware (see ``_unpack_flags`` in :mod:`repro.trace.framing`).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import TraceFormatError
from repro.trace.framing import (
    _HEADER,
    FrameDecoder,
    FrameSplitter,
    encode_frame,
)
from repro.trace.jsonl import FlushRecord
from repro.trace.record import IOKind, IORequest

# --------------------------------------------------------------------- #
# strategies
# --------------------------------------------------------------------- #
finite_floats = st.floats(allow_nan=False, allow_infinity=False, width=64)
small_floats = st.floats(min_value=-1e12, max_value=1e12, allow_nan=False)


@st.composite
def io_requests(draw) -> IORequest:
    start = draw(small_floats)
    duration = draw(st.floats(min_value=0.0, max_value=1e6, allow_nan=False))
    return IORequest(
        rank=draw(st.integers(min_value=0, max_value=2**31 - 1)),
        start=start,
        end=start + duration,
        nbytes=draw(st.integers(min_value=0, max_value=2**62)),
        kind=draw(st.sampled_from(IOKind)),
    )


metadata_values = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**62), max_value=2**62),
    finite_floats,
    st.text(max_size=20),
)


@st.composite
def flush_records(draw) -> FlushRecord:
    return FlushRecord(
        flush_index=draw(st.integers(min_value=0, max_value=2**31)),
        timestamp=draw(small_floats),
        requests=tuple(draw(st.lists(io_requests(), max_size=5))),
        metadata=draw(st.dictionaries(st.text(max_size=10), metadata_values, max_size=4)),
    )


jobs = st.text(max_size=40)
payload_formats = st.sampled_from(["json", "msgpack"])
tokens = st.one_of(st.none(), st.integers(min_value=0, max_value=15))


class TestRoundTrip:
    @settings(max_examples=80, deadline=None)
    @given(flush=flush_records(), job=jobs, payload_format=payload_formats, token=tokens)
    def test_single_frame_round_trips_exactly(self, flush, job, payload_format, token):
        data = encode_frame(flush, job=job, payload_format=payload_format, token=token)
        decoder = FrameDecoder()
        decoder.feed(data)
        frames = decoder.drain()
        assert len(frames) == 1
        assert frames[0].job == job
        assert frames[0].flush == flush
        assert frames[0].payload_format == payload_format
        assert frames[0].token == token
        assert decoder.buffered_bytes == 0

    @settings(max_examples=40, deadline=None)
    @given(
        items=st.lists(st.tuples(jobs, flush_records(), payload_formats, tokens), max_size=4),
        chunk_seed=st.randoms(use_true_random=False),
    )
    def test_stream_survives_arbitrary_chunking(self, items, chunk_seed):
        stream = b"".join(
            encode_frame(flush, job=job, payload_format=fmt, token=token)
            for job, flush, fmt, token in items
        )
        decoder = FrameDecoder()
        received = []
        position = 0
        while position < len(stream):
            step = chunk_seed.randint(1, max(1, len(stream) // 3))
            decoder.feed(stream[position : position + step])
            position += step
            received.extend(decoder.drain())
        assert [(f.job, f.flush, f.token) for f in received] == [
            (job, flush, token) for job, flush, _, token in items
        ]
        assert decoder.buffered_bytes == 0

    @settings(max_examples=40, deadline=None)
    @given(flush=flush_records(), job=jobs, payload_format=payload_formats, token=tokens)
    def test_splitter_header_routing_matches_decoder(self, flush, job, payload_format, token):
        data = encode_frame(flush, job=job, payload_format=payload_format, token=token)
        splitter = FrameSplitter()
        splitter.feed(data)
        raw = splitter.drain()
        assert len(raw) == 1
        assert raw[0].job == job
        assert raw[0].token == token
        # Routing is transparent: the forwarded bytes decode to the original.
        decoder = FrameDecoder()
        decoder.feed(raw[0].data)
        assert decoder.drain()[0].flush == flush


class TestTruncation:
    @settings(max_examples=60, deadline=None)
    @given(
        flush=flush_records(),
        job=jobs,
        payload_format=payload_formats,
        token=tokens,
        cut=st.integers(min_value=0, max_value=10**6),
    )
    def test_any_strict_prefix_stays_buffered_never_misframes(
        self, flush, job, payload_format, token, cut
    ):
        data = encode_frame(flush, job=job, payload_format=payload_format, token=token)
        prefix = data[: cut % len(data)]
        decoder = FrameDecoder()
        decoder.feed(prefix)
        # A truncated frame is "not yet": no frame, no error, bytes parked.
        assert decoder.drain() == []
        assert decoder.buffered_bytes == len(prefix)
        # Feeding the rest completes it exactly.
        decoder.feed(data[len(prefix) :])
        frames = decoder.drain()
        assert len(frames) == 1 and frames[0].flush == flush


class TestCorruption:
    """Single-byte header corruption: a clean error or parked bytes — never a
    wrong frame, and never desynchronization of the frames that follow."""

    @settings(max_examples=100, deadline=None)
    @given(
        flush=flush_records(),
        job=jobs,
        payload_format=payload_formats,
        token=tokens,
        position=st.integers(min_value=0, max_value=_HEADER.size - 1),
        new_byte=st.integers(min_value=0, max_value=255),
    )
    def test_header_corruption_never_yields_a_wrong_frame(
        self, flush, job, payload_format, token, position, new_byte
    ):
        frame = encode_frame(flush, job=job, payload_format=payload_format, token=token)
        if frame[position] == new_byte:
            new_byte = (new_byte + 1) % 256
        corrupted = bytearray(frame)
        corrupted[position] = new_byte
        follower = encode_frame(flush, job=job, payload_format=payload_format, token=token)
        decoder = FrameDecoder()
        decoder.feed(bytes(corrupted) + follower)
        try:
            frames = decoder.drain()
        except TraceFormatError:
            return  # clean rejection
        if position == 5:
            # Flags corruption can land on another *valid* flags byte
            # (version 0, or version 1 with a different token); the frame
            # then legitimately decodes with that token.
            assert [(f.job, f.flush) for f in frames] == [(job, flush)] * len(frames)
            survived_token = (new_byte & 0x0F) if (new_byte >> 4) == 1 else None
            assert all(f.token == survived_token for f in frames[:1])
            return
        # Not rejected outright: the only safe alternative is an incomplete
        # frame waiting for bytes (a corrupt length field pointing past the
        # buffer).  Nothing may have decoded.
        assert frames == []
        assert decoder.buffered_bytes == len(corrupted) + len(follower)

    @settings(max_examples=60, deadline=None)
    @given(
        flush=flush_records(),
        job=jobs,
        payload_format=payload_formats,
        token=st.integers(min_value=0, max_value=15),
        wrong=st.integers(min_value=0, max_value=15),
    )
    def test_expected_token_rejects_mismatch_and_unauthenticated(
        self, flush, job, payload_format, token, wrong
    ):
        expected = wrong if wrong != token else (wrong + 1) % 16
        decoder = FrameDecoder(expected_token=expected)
        decoder.feed(encode_frame(flush, job=job, payload_format=payload_format, token=token))
        with pytest.raises(TraceFormatError):
            decoder.drain()
        # Version-0 (tokenless) frames are rejected too when auth is required.
        unauthenticated = FrameDecoder(expected_token=expected)
        unauthenticated.feed(encode_frame(flush, job=job, payload_format=payload_format))
        with pytest.raises(TraceFormatError):
            unauthenticated.drain()


class TestFlagVersioning:
    def test_version_0_frames_still_require_zero_low_nibble(self):
        flush = FlushRecord(flush_index=0, timestamp=1.0, requests=())
        frame = bytearray(encode_frame(flush, job="a"))
        frame[5] = 0x07  # version 0 with a non-zero nibble: reserved, reject
        decoder = FrameDecoder()
        decoder.feed(bytes(frame))
        with pytest.raises(TraceFormatError):
            decoder.drain()

    def test_future_versions_rejected_not_misframed(self):
        flush = FlushRecord(flush_index=0, timestamp=1.0, requests=())
        frame = bytearray(encode_frame(flush, job="a"))
        frame[5] = 0x20  # version 2: from the future
        decoder = FrameDecoder()
        decoder.feed(bytes(frame))
        with pytest.raises(TraceFormatError):
            decoder.drain()

    def test_token_out_of_nibble_range_rejected_at_encode(self):
        flush = FlushRecord(flush_index=0, timestamp=1.0, requests=())
        for bad in (-1, 16, 255):
            with pytest.raises(TraceFormatError):
                encode_frame(flush, job="a", token=bad)
