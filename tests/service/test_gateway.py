"""End-to-end tests of the asyncio TCP gateway and the blocking client.

The acceptance criterion of the API redesign: streaming N concurrent jobs
through the TCP gateway via :class:`~repro.client.ServiceClient` must
produce **bit-identical** session state and predictions to direct in-process
ingestion — for the single-process engine and for a 2-shard deployment
alike.  On top, the protocol-versioning guarantees are exercised against a
live server: an unknown-version hello is rejected cleanly, and corrupt or
truncated control bytes never deadlock the gateway.
"""

from __future__ import annotations

import socket

import pytest

from repro.client import ServiceClient
from repro.core import FtioConfig
from repro.exceptions import ProtocolError, ServiceError
from repro.service import (
    PredictionService,
    ServiceConfig,
    SessionConfig,
    ShardedService,
    ThreadedGateway,
)
from repro.service import protocol as proto
from repro.trace.jsonl import trace_to_flushes
from repro.trace.msgpack import packb, unpackb
from repro.workloads.hacc import hacc_flush_times, hacc_io_trace

N_JOBS = 16


@pytest.fixture(scope="module")
def online_config():
    return FtioConfig(
        sampling_frequency=10.0, use_autocorrelation=False, compute_characterization=False
    )


@pytest.fixture(scope="module")
def service_config(online_config):
    return ServiceConfig(
        session=SessionConfig(config=online_config, max_samples=200_000), max_workers=2
    )


@pytest.fixture(scope="module")
def job_streams(online_config):
    """16 concurrent periodic jobs with different periods, phases and sizes."""
    streams = {}
    for j in range(N_JOBS):
        trace = hacc_io_trace(
            ranks=2,
            loops=5,
            period=6.0 + 0.5 * j,
            first_phase_delay=3.0 + 0.25 * j,
            seed=100 + j,
        )
        streams[f"job-{j:02d}"] = trace_to_flushes(trace, hacc_flush_times(trace))
    return streams


def _stream_direct(service, streams) -> dict:
    """Reference run: in-process ingestion, one pump per interleaved round."""
    n_rounds = max(len(flushes) for flushes in streams.values())
    for round_index in range(n_rounds):
        for job, flushes in streams.items():
            if round_index < len(flushes):
                service.ingest_flush(job, flushes[round_index])
        if isinstance(service, PredictionService):
            service.pump(wait_for_batch=True)
            service.dispatcher.join()
        else:
            service.pump()
    state = service.snapshot_state()
    service.close()
    return state


def _stream_through_gateway(engine, streams) -> tuple[dict, list]:
    """The same workload, but every byte crosses the TCP gateway."""
    n_rounds = max(len(flushes) for flushes in streams.values())
    with ThreadedGateway(engine, own_engine=True) as gateway:
        with ServiceClient(gateway.host, gateway.port) as client:
            for round_index in range(n_rounds):
                for job, flushes in streams.items():
                    if round_index < len(flushes):
                        assert client.submit_flush(job, flushes[round_index]) == 1
                client.pump()
            state = client.snapshot()
            predictions = client.predictions()
    return state, predictions


def _comparable(state: dict) -> dict:
    """Canonical snapshot form: msgpack-normalized, sessions sorted by job."""
    state = unpackb(packb({k: v for k, v in state.items() if k != "sharding"}))
    state["sessions"] = sorted(state["sessions"], key=lambda s: s["job"])
    return state


class TestGatewayEquivalence:
    def test_single_process_bit_identical(self, service_config, job_streams):
        direct = _stream_direct(PredictionService(service_config), job_streams)
        via_gateway, predictions = _stream_through_gateway(
            PredictionService(service_config), job_streams
        )
        assert _comparable(via_gateway) == _comparable(direct)
        # Every job produced live predictions through the wire.
        assert {p.job for p in predictions} == set(job_streams)
        by_job = {}
        for p in predictions:
            by_job[p.job] = p
        for job, update in by_job.items():
            assert update.period == direct["publisher"]["latest"][job]["period"]

    def test_sharded_bit_identical(self, service_config, job_streams):
        direct = _stream_direct(ShardedService(2, service_config), job_streams)
        via_gateway, predictions = _stream_through_gateway(
            ShardedService(2, service_config), job_streams
        )
        assert _comparable(via_gateway) == _comparable(direct)
        assert {p.job for p in predictions} == set(job_streams)

    def test_sharded_matches_single_process(self, service_config, job_streams):
        # The transitive closure: gateway == direct (above) and shards == 1
        # process, so every surface serves the same predictions.
        single = _stream_direct(PredictionService(service_config), job_streams)
        sharded = _stream_direct(ShardedService(2, service_config), job_streams)
        assert _comparable(sharded) == _comparable(single)


class TestGatewayProtocol:
    @pytest.fixture()
    def gateway(self, service_config):
        with ThreadedGateway(PredictionService(service_config), own_engine=True) as gw:
            yield gw

    def test_handshake_reports_version_and_shards(self, gateway):
        with ServiceClient(gateway.host, gateway.port) as client:
            assert client.protocol_version == proto.PROTOCOL_VERSION
            assert client.server == "repro-gateway"
            assert client.shards == 0

    def test_unknown_version_hello_rejected_cleanly(self, gateway):
        with socket.create_connection((gateway.host, gateway.port), timeout=10.0) as sock:
            sock.sendall(proto.encode_message(proto.Hello(versions=(99,))))
            reply = self._read_one(sock)
            assert isinstance(reply, proto.Error)
            assert reply.code == "unsupported-version"
            assert "99" in reply.message
            # The server closes the connection after the rejection.
            assert sock.recv(1024) == b""
        # ... and keeps serving other clients.
        with ServiceClient(gateway.host, gateway.port) as client:
            assert client.stats()["jobs"] == 0

    def test_first_message_must_be_hello(self, gateway):
        with socket.create_connection((gateway.host, gateway.port), timeout=10.0) as sock:
            sock.sendall(proto.encode_message(proto.Pump()))
            reply = self._read_one(sock)
            assert isinstance(reply, proto.Error)
            assert reply.code == "protocol"
            assert sock.recv(1024) == b""

    def test_corrupt_bytes_never_deadlock_the_gateway(self, gateway):
        # A peer spraying garbage gets a typed rejection and a closed socket.
        with socket.create_connection((gateway.host, gateway.port), timeout=10.0) as sock:
            sock.sendall(b"GARBAGE-NOT-A-MESSAGE" * 10)
            reply = self._read_one(sock)
            assert isinstance(reply, proto.Error)
            assert reply.code == "protocol"
            assert sock.recv(1024) == b""
        # A peer sending a truncated message simply stays pending — and does
        # not wedge the event loop for anyone else.
        with socket.create_connection((gateway.host, gateway.port), timeout=10.0) as idle:
            idle.sendall(proto.encode_message(proto.Hello())[:7])
            with ServiceClient(gateway.host, gateway.port) as client:
                assert client.pump() == 0
                assert client.stats()["jobs"] == 0

    def test_engine_errors_keep_the_connection_usable(self, gateway):
        with ServiceClient(gateway.host, gateway.port) as client:
            with pytest.raises(ServiceError, match="snapshot version"):
                client.restore({"snapshot_version": 999, "sessions": []})
            # The failure was scoped to that request, not the connection.
            assert client.stats()["jobs"] == 0

    def test_failed_handshake_closes_the_socket(self, service_config, monkeypatch):
        created = []
        real_connect = socket.create_connection

        def spying_connect(*args, **kwargs):
            sock = real_connect(*args, **kwargs)
            created.append(sock)
            return sock

        monkeypatch.setattr(socket, "create_connection", spying_connect)
        engine = PredictionService(service_config)
        with ThreadedGateway(engine, own_engine=True, token=5) as gw:
            with pytest.raises(ServiceError, match="unauthorized"):
                ServiceClient(gw.host, gw.port, token=9)
        assert len(created) == 1
        # A closed socket reports fileno -1; anything else is a leaked fd.
        assert created[0].fileno() == -1

    def test_submit_rejects_malformed_frames(self, gateway):
        with ServiceClient(gateway.host, gateway.port) as client:
            with pytest.raises(ServiceError):
                client.submit_bytes(b"NOTFTS1-data-plane-garbage")
            assert client.stats()["jobs"] == 0

    @staticmethod
    def _read_one(sock) -> proto.Message:
        decoder = proto.MessageDecoder()
        while True:
            for message in decoder.messages():
                return message
            data = sock.recv(1 << 16)
            if not data:
                raise ProtocolError("connection closed before a reply arrived")
            decoder.feed(data)


class TestGatewayFeatures:
    def test_subscription_streams_filtered_predictions(self, service_config, job_streams):
        job, flushes = next(iter(job_streams.items()))
        other_job = list(job_streams)[1]
        with ThreadedGateway(PredictionService(service_config), own_engine=True) as gateway:
            monitor = ServiceClient(gateway.host, gateway.port, name="monitor")
            monitor.subscribe([job])
            with ServiceClient(gateway.host, gateway.port) as driver:
                for flush in flushes[:4]:
                    driver.submit_flush(job, flush)
                    driver.submit_flush(other_job, job_streams[other_job][0])
                    driver.pump()
            events = monitor.poll_predictions(timeout=5.0, min_events=4)
            assert len(events) >= 4
            assert {e.job for e in events} == {job}
            monitor.close()

    def test_snapshot_restore_round_trip_over_the_wire(self, service_config, job_streams):
        job, flushes = next(iter(job_streams.items()))
        with ThreadedGateway(PredictionService(service_config), own_engine=True) as gateway:
            with ServiceClient(gateway.host, gateway.port) as client:
                for flush in flushes:
                    client.submit_flush(job, flush)
                    client.pump()
                state = client.snapshot()
                latest = client.stats()
        with ThreadedGateway(PredictionService(service_config), own_engine=True) as gateway:
            with ServiceClient(gateway.host, gateway.port) as client:
                assert client.restore(state) == 1
                restored = client.stats()
                assert restored["jobs"] == latest["jobs"] == 1
                # The restored engine answers with the exact same state: the
                # snapshot → wire → restore → snapshot loop is lossless.
                assert client.snapshot() == unpackb(packb(state))

    def test_finish_job_over_the_wire(self, service_config, job_streams):
        job, flushes = next(iter(job_streams.items()))
        engine = PredictionService(service_config)
        with ThreadedGateway(engine, own_engine=True) as gateway:
            with ServiceClient(gateway.host, gateway.port) as client:
                client.submit_flush(job, flushes[0])
                client.finish_job(job)
                client.drain()
                assert engine.session(job).finished

    def test_v1_client_interops_with_v2_gateway(self, service_config, job_streams):
        """A client that only speaks protocol v1 must still be served in full
        (the v2 server never sends it a chunk stream or any other v2-only
        message)."""
        job, flushes = next(iter(job_streams.items()))
        with ThreadedGateway(PredictionService(service_config), own_engine=True) as gateway:
            with ServiceClient(gateway.host, gateway.port, versions=(1,)) as v1:
                assert v1.protocol_version == 1
                for flush in flushes[:4]:
                    assert v1.submit_flush(job, flush) == 1
                    v1.pump()
                assert v1.stats()["jobs"] == 1
                # Snapshot arrives as one plain SnapshotReply (v1 shape) ...
                state = v1.snapshot()
                assert {s["job"] for s in state["sessions"]} == {job}
                # ... restore also stays on the v1 message.
                assert v1.restore(state) == 1
                # The v2-only surface is refused client-side, typed.
                with pytest.raises(ServiceError, match="requires v2"):
                    v1.resize(2)

    def test_chunked_snapshot_and_restore_over_the_wire(
        self, service_config, job_streams
    ):
        job, flushes = next(iter(job_streams.items()))
        with ThreadedGateway(PredictionService(service_config), own_engine=True) as gateway:
            with ServiceClient(gateway.host, gateway.port) as client:
                for flush in flushes:
                    client.submit_flush(job, flush)
                    client.pump()
                plain = client.snapshot()
                # A tiny chunk bound forces a genuinely multi-chunk stream.
                assert len(packb(plain)) > 512
                chunked = client.snapshot(max_chunk=512)
                assert chunked == unpackb(packb(plain))
        with ThreadedGateway(PredictionService(service_config), own_engine=True) as gateway:
            with ServiceClient(gateway.host, gateway.port) as client:
                assert client.restore(chunked, max_chunk=512) == 1
                assert client.snapshot() == unpackb(packb(chunked))

    def test_resize_over_the_wire(self, service_config, job_streams):
        jobs = list(job_streams)[:8]
        engine = ShardedService(2, service_config)
        with ThreadedGateway(engine, own_engine=True) as gateway:
            with ServiceClient(gateway.host, gateway.port) as client:
                assert client.shards == 2
                for job in jobs:
                    client.submit_flush(job, job_streams[job][0])
                client.pump()
                summary = client.resize(4)
                assert summary["n_shards"] == client.shards == engine.n_shards == 4
                # Retrying the same resize is a no-op (the idempotence the
                # reconnect path relies on).
                assert client.resize(4)["moved_sessions"] == 0
                for job in jobs:
                    client.submit_flush(job, job_streams[job][1])
                client.drain()
                stats = client.stats()
                assert stats["jobs"] == len(jobs)
                assert stats["shards"] == 4
                assert stats["reshards"] == 1
                summary = client.resize(1)
                assert client.shards == 1
                assert summary["moved_sessions"] > 0

    def test_resize_single_process_engine_is_a_typed_error(self, service_config):
        with ThreadedGateway(PredictionService(service_config), own_engine=True) as gateway:
            with ServiceClient(gateway.host, gateway.port) as client:
                with pytest.raises(ServiceError, match="single-process"):
                    client.resize(2)
                # The failure was scoped to that request.
                assert client.stats()["jobs"] == 0

    def test_threaded_gateway_resize_from_the_serving_side(
        self, service_config, job_streams
    ):
        jobs = list(job_streams)[:4]
        engine = ShardedService(2, service_config)
        with ThreadedGateway(engine, own_engine=True) as gateway:
            with ServiceClient(gateway.host, gateway.port) as client:
                for job in jobs:
                    client.submit_flush(job, job_streams[job][0])
                client.pump()
                summary = gateway.resize(3)
                assert summary["to_shards"] == engine.n_shards == 3
                # Clients keep working across the topology change.
                for job in jobs:
                    client.submit_flush(job, job_streams[job][1])
                client.drain()
                assert client.stats()["jobs"] == len(jobs)

    def test_multiple_clients_share_one_engine(self, service_config, job_streams):
        jobs = list(job_streams)[:4]
        with ThreadedGateway(PredictionService(service_config), own_engine=True) as gateway:
            clients = [
                ServiceClient(gateway.host, gateway.port, name=f"client-{i}")
                for i in range(4)
            ]
            try:
                for client, job in zip(clients, jobs):
                    client.submit_flush(job, job_streams[job][0])
                clients[0].drain()
                stats = clients[-1].stats()
                assert stats["jobs"] == 4
                assert stats["detections"] == 4
            finally:
                for client in clients:
                    client.close()
