"""Smoke tests of the gateway's HTTP ops surface.

A plain ``urllib`` client (what a health checker or Prometheus scraper is,
at heart) hits ``/healthz``, ``/status`` and ``/metrics`` on a live sharded
deployment and asserts the responses are well-formed: valid JSON with the
full stats tree, and text exposition carrying the merged cross-shard
histograms the tentpole promises (dispatcher latency, kernel stage time,
ring occupancy).
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import pytest

from repro.analysis.benchmark import synthetic_flush_streams
from repro.core import FtioConfig
from repro.service import ServiceConfig, SessionConfig, ShardedService, ThreadedGateway
from repro.trace.framing import encode_frame

N_SHARDS = 4


@pytest.fixture(scope="module")
def live_gateway():
    config = ServiceConfig(
        session=SessionConfig(
            config=FtioConfig(
                sampling_frequency=10.0,
                use_autocorrelation=False,
                compute_characterization=False,
            )
        )
    )
    streams = synthetic_flush_streams(8, flushes_per_job=3, requests_per_flush=16, seed=3)
    service = ShardedService(N_SHARDS, config)
    try:
        with ThreadedGateway(service, ops_port=0) as gateway:
            for round_index in range(3):
                for job, flushes in streams.items():
                    if round_index < len(flushes):
                        service.feed_bytes(encode_frame(flushes[round_index], job=job))
                service.pump()
            service.drain()
            yield gateway
    finally:
        service.close()


def fetch(gateway, path: str) -> tuple[int, str, str]:
    url = f"http://127.0.0.1:{gateway.ops_port}{path}"
    with urllib.request.urlopen(url, timeout=30) as response:
        return (
            response.status,
            response.headers.get("Content-Type", ""),
            response.read().decode("utf-8"),
        )


def test_healthz_is_a_cheap_liveness_probe(live_gateway):
    status, content_type, body = fetch(live_gateway, "/healthz")
    assert status == 200
    assert content_type.startswith("text/plain")
    assert body == "ok\n"


def test_status_returns_the_full_json_tree(live_gateway):
    status, content_type, body = fetch(live_gateway, "/status")
    assert status == 200
    assert content_type.startswith("application/json")
    document = json.loads(body)
    assert document["healthy"] is True
    assert document["shards"] == N_SHARDS
    assert document["stats"]["jobs"] == 8
    assert document["stats"]["detections"] > 0
    # The merged metric tree rides along, as does the per-shard breakdown.
    assert "repro_dispatcher_detect_seconds" in document["metrics"]
    assert [entry["shard"] for entry in document["shards_detail"]] == list(range(N_SHARDS))
    assert all(entry["alive"] for entry in document["shards_detail"])
    assert sum(entry["jobs"] for entry in document["shards_detail"]) == 8
    assert document["spans"] == []  # spans are off by default


def test_metrics_returns_prometheus_exposition(live_gateway):
    status, content_type, body = fetch(live_gateway, "/metrics")
    assert status == 200
    assert content_type.startswith("text/plain")
    assert body.endswith("\n")
    # Merged cross-shard histograms: dispatcher latency, kernel stage time.
    assert "# TYPE repro_dispatcher_detect_seconds histogram" in body
    assert "repro_dispatcher_detect_seconds_bucket{le=" in body
    assert 'repro_batch_kernel_stage_seconds_bucket{stage="rfft",le=' in body
    # Router-side ring instrumentation, one series per shard.
    assert 'repro_ring_occupancy_bytes{shard="0"}' in body
    assert 'repro_ring_doorbell_sends_total{shard="3"}' in body
    # Counters summed over shards agree with the stats tree.
    frames_line = next(
        line for line in body.splitlines() if line.startswith("repro_broker_frames_total")
    )
    assert int(frames_line.rsplit(" ", 1)[1]) == 24  # 8 jobs x 3 flushes
    # Every exposition line is "name{labels} value" or a comment.
    for line in body.splitlines():
        assert line.startswith("#") or len(line.rsplit(" ", 1)) == 2


def test_unknown_path_is_a_404_and_leaves_the_listener_alive(live_gateway):
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        fetch(live_gateway, "/nope")
    assert excinfo.value.code == 404
    status, _, _ = fetch(live_gateway, "/healthz")
    assert status == 200


def test_ops_port_is_none_until_the_listener_binds():
    # With ops_port=0 (pick a free port) the property must never echo the
    # requested placeholder back: before start it is None, after start it is
    # the real bound port, and with the surface off it stays None.
    from repro.service import PredictionService
    from repro.service.gateway import ServiceGateway

    config = ServiceConfig(
        session=SessionConfig(
            config=FtioConfig(
                sampling_frequency=10.0,
                use_autocorrelation=False,
                compute_characterization=False,
            )
        )
    )
    engine = PredictionService(config)
    unbound = ServiceGateway(engine, ops_port=0)
    assert unbound.ops_port is None
    with ThreadedGateway(engine, ops_port=0) as gateway:
        port = gateway.ops_port
        assert port is not None and port > 0
        status, _, _ = fetch(gateway, "/healthz")
        assert status == 200
    engine.close()


def test_ops_port_is_none_when_the_surface_is_off():
    from repro.service import PredictionService

    config = ServiceConfig(
        session=SessionConfig(
            config=FtioConfig(
                sampling_frequency=10.0,
                use_autocorrelation=False,
                compute_characterization=False,
            )
        )
    )
    with ThreadedGateway(PredictionService(config), own_engine=True) as gateway:
        assert gateway.ops_port is None
