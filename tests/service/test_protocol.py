"""Unit and property tests of the versioned control-plane protocol.

The hypothesis round-trips cover every registered message type: whatever a
peer encodes, the decoder must rebuild bit-identically — including through
arbitrary TCP-style re-chunking of the byte stream.  Corruption (bad magic,
unknown type codes, oversized bodies, undecodable payloads) must raise
:class:`~repro.exceptions.ProtocolError` instead of mis-framing, and a
truncated message must simply stay buffered — never produce garbage, never
busy-loop.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ProtocolError
from repro.service import protocol as proto

# --------------------------------------------------------------------- #
# strategies
# --------------------------------------------------------------------- #
token_st = st.one_of(st.none(), st.integers(min_value=0, max_value=15))
name_st = st.text(max_size=16)
job_st = st.text(min_size=1, max_size=16)
scalar_st = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**40), max_value=2**40),
    st.floats(allow_nan=False, allow_infinity=False, width=64),
    st.text(max_size=12),
    st.binary(max_size=12),
)
flat_map_st = st.dictionaries(st.text(max_size=8), scalar_st, max_size=4)
nested_map_st = st.dictionaries(
    st.text(max_size=8),
    st.one_of(scalar_st, st.lists(scalar_st, max_size=3), flat_map_st),
    max_size=4,
)
update_st = st.fixed_dictionaries(
    {
        "job": job_st,
        "index": st.integers(min_value=0, max_value=2**20),
        "time": st.floats(allow_nan=False, allow_infinity=False, width=64),
        "frequency": st.one_of(st.none(), st.floats(0.0, 1e6, allow_nan=False)),
        "period": st.one_of(st.none(), st.floats(0.0, 1e6, allow_nan=False)),
        "confidence": st.floats(0.0, 1.0, allow_nan=False),
        "latency": st.one_of(st.none(), st.floats(0.0, 10.0, allow_nan=False)),
    }
)
updates_st = st.lists(update_st, max_size=3).map(tuple)
expected_bytes_st = st.one_of(st.none(), st.integers(min_value=0, max_value=2**48))
weights_st = st.one_of(
    st.none(),
    st.lists(
        st.floats(min_value=0.125, max_value=8.0, allow_nan=False), min_size=1, max_size=4
    ).map(tuple),
)

message_st = st.one_of(
    st.builds(
        proto.Hello,
        versions=st.lists(st.integers(1, 255), min_size=1, max_size=4).map(tuple),
        token=token_st,
        client=name_st,
    ),
    st.builds(
        proto.HelloReply,
        version=st.integers(1, 255),
        server=name_st,
        shards=st.integers(0, 64),
    ),
    st.builds(proto.Error, message=st.text(max_size=64), code=st.text(min_size=1, max_size=16)),
    st.builds(proto.SubmitFrames, data=st.binary(max_size=256)),
    st.builds(proto.SubmitReply, frames=st.integers(0, 2**20)),
    st.builds(proto.Pump, expected_bytes=expected_bytes_st),
    st.builds(proto.PumpReply, submitted=st.integers(0, 2**20), updates=updates_st),
    st.builds(proto.Drain, expected_bytes=expected_bytes_st),
    st.builds(proto.DrainReply, updates=updates_st),
    st.builds(proto.Stats),
    st.builds(proto.StatsReply, stats=nested_map_st),
    st.builds(proto.Snapshot, expected_bytes=expected_bytes_st),
    st.builds(proto.SnapshotReply, state=nested_map_st),
    st.builds(proto.Restore, state=nested_map_st),
    st.builds(proto.RestoreReply, restored=st.integers(0, 2**20)),
    st.builds(
        proto.Subscribe,
        jobs=st.one_of(st.none(), st.lists(job_st, max_size=3).map(tuple)),
    ),
    st.builds(proto.SubscribeReply, subscription=st.integers(0, 2**31 - 1)),
    st.builds(proto.PredictionEvent, update=update_st),
    st.builds(proto.FinishJob, job=job_st),
    st.builds(proto.FinishJobReply, job=job_st),
    st.builds(proto.Close),
    st.builds(proto.CloseReply, closed=st.booleans()),
    # --- protocol version 2 ------------------------------------------- #
    st.builds(
        proto.SnapshotChunk,
        kind=st.sampled_from(proto.CHUNK_KINDS),
        seq=st.integers(0, 2**20),
        data=st.binary(max_size=256),
        last=st.booleans(),
    ),
    st.builds(proto.ResizeShards, n_shards=st.integers(1, 64)),
    st.builds(
        proto.ResizeShardsReply,
        n_shards=st.integers(1, 64),
        moved_sessions=st.integers(0, 2**20),
        moved_jobs=st.lists(job_st, max_size=3).map(tuple),
    ),
    st.builds(
        proto.ExtractJobs,
        jobs=st.lists(job_st, max_size=4).map(tuple),
        expected_bytes=expected_bytes_st,
        max_chunk=st.one_of(st.none(), st.integers(1, proto.MAX_CHUNK_BYTES)),
    ),
    st.builds(proto.ExtractJobsReply, state=nested_map_st),
    st.builds(proto.MetricsReport, metrics=nested_map_st),
    # --- zero-pause handover (double-routed migrations) ----------------- #
    st.builds(
        proto.BeginHandover,
        shard=st.integers(0, 63),
        old_shards=st.integers(1, 64),
        new_shards=st.integers(1, 64),
        replicas=st.integers(1, 256),
        old_weights=weights_st,
        new_weights=weights_st,
    ),
    st.builds(proto.BeginHandoverReply, shard=st.integers(0, 63)),
    st.builds(
        proto.CompleteHandover,
        expected_bytes=expected_bytes_st,
        drop_counts=st.dictionaries(job_st, st.integers(0, 2**20), max_size=4),
    ),
    st.builds(
        proto.CompleteHandoverReply,
        replayed=st.integers(0, 2**20),
        dropped=st.integers(0, 2**20),
    ),
    st.builds(proto.AbortHandover, expected_bytes=expected_bytes_st),
    st.builds(proto.AbortHandoverReply, discarded=st.integers(0, 2**20)),
    st.builds(proto.ReapFinished, forget_predictions=st.booleans()),
    st.builds(proto.ReapFinishedReply, jobs=st.lists(job_st, max_size=4).map(tuple)),
    # --- multi-host federation ----------------------------------------- #
    st.builds(
        proto.RegisterShard,
        name=name_st,
        host=name_st,
        pid=st.integers(0, 2**22),
        cpu_count=st.integers(0, 256),
        weight=st.floats(min_value=0.125, max_value=8.0, allow_nan=False),
    ),
    st.builds(
        proto.RegisterShardReply,
        shard=st.integers(0, 63),
        config=nested_map_st,
        data_key=st.text(max_size=32),
    ),
    st.builds(
        proto.AttachChannel,
        key=st.text(max_size=32),
        channel=st.sampled_from(["data", "read"]),
    ),
    st.builds(
        proto.Heartbeat,
        seq=st.integers(0, 2**31 - 1),
        sent_at=st.floats(min_value=0.0, max_value=1e9, allow_nan=False),
    ),
    st.builds(
        proto.HeartbeatReply,
        seq=st.integers(0, 2**31 - 1),
        sent_at=st.floats(min_value=0.0, max_value=1e9, allow_nan=False),
    ),
)


def _normalize(message: proto.Message) -> proto.Message:
    """Canonical form for equality: msgpack decodes arrays as lists."""
    return type(message).from_payload(
        {k: _as_lists(v) for k, v in message.to_payload().items()}
    )


def _as_lists(value):
    if isinstance(value, tuple):
        return [_as_lists(v) for v in value]
    if isinstance(value, list):
        return [_as_lists(v) for v in value]
    if isinstance(value, dict):
        return {k: _as_lists(v) for k, v in value.items()}
    return value


# --------------------------------------------------------------------- #
# property tests
# --------------------------------------------------------------------- #
class TestRoundTrip:
    @given(message=message_st)
    @settings(max_examples=300, deadline=None)
    def test_every_message_round_trips(self, message):
        decoded = proto.decode_message(proto.encode_message(message))
        assert type(decoded) is type(message)
        assert decoded == _normalize(message)

    @given(
        messages=st.lists(message_st, min_size=1, max_size=5),
        chunk=st.integers(min_value=1, max_value=37),
    )
    @settings(max_examples=100, deadline=None)
    def test_rechunked_stream_decodes_identically(self, messages, chunk):
        stream = b"".join(proto.encode_message(m) for m in messages)
        decoder = proto.MessageDecoder()
        decoded = []
        for start in range(0, len(stream), chunk):
            decoder.feed(stream[start : start + chunk])
            decoded.extend(decoder.messages())
        assert decoder.buffered_bytes == 0
        assert [type(m) for m in decoded] == [type(m) for m in messages]
        assert decoded == [_normalize(m) for m in messages]

    @given(message=message_st, cut=st.integers(min_value=1, max_value=8))
    @settings(max_examples=100, deadline=None)
    def test_truncated_message_stays_buffered(self, message, cut):
        encoded = proto.encode_message(message)
        cut = min(cut, len(encoded) - 1)
        decoder = proto.MessageDecoder()
        decoder.feed(encoded[:-cut])
        assert list(decoder.messages()) == []
        assert decoder.buffered_bytes == len(encoded) - cut
        decoder.feed(encoded[-cut:])
        assert list(decoder.messages()) == [_normalize(message)]


class TestVersioning:
    def test_current_version_is_supported(self):
        assert proto.PROTOCOL_VERSION in proto.SUPPORTED_VERSIONS

    def test_negotiation_picks_highest_common(self):
        # A v1-only peer (an old ServiceClient) still negotiates 1 against
        # this v2 implementation; a v2 peer gets 2.
        assert proto.negotiate_version([1]) == 1
        assert proto.negotiate_version([1, 99]) == 1
        assert proto.negotiate_version([2]) == 2
        assert proto.negotiate_version([1, 2]) == 2
        assert proto.negotiate_version(proto.SUPPORTED_VERSIONS) == proto.PROTOCOL_VERSION

    def test_negotiation_rejects_unknown_only(self):
        assert proto.negotiate_version([99]) is None
        assert proto.negotiate_version([0, 3, 255]) is None
        assert proto.negotiate_version([]) is None

    def test_hello_requires_versions(self):
        with pytest.raises(ProtocolError):
            proto.Hello.from_payload({"versions": []})
        with pytest.raises(ProtocolError):
            proto.Hello.from_payload({"token": 3})


class TestCorruption:
    def test_bad_magic_raises(self):
        encoded = bytearray(proto.encode_message(proto.Stats()))
        encoded[0] ^= 0xFF
        decoder = proto.MessageDecoder()
        decoder.feed(bytes(encoded))
        with pytest.raises(ProtocolError, match="magic"):
            list(decoder.messages())

    def test_unknown_type_code_raises(self):
        encoded = bytearray(proto.encode_message(proto.Stats()))
        encoded[4] = 0xEE
        decoder = proto.MessageDecoder()
        decoder.feed(bytes(encoded))
        with pytest.raises(ProtocolError, match="type code"):
            list(decoder.messages())

    def test_oversized_body_length_raises_immediately(self):
        import struct

        header = struct.pack(">4sBI", proto.PROTOCOL_MAGIC, 10, proto.MAX_MESSAGE_BYTES + 1)
        decoder = proto.MessageDecoder()
        decoder.feed(header)
        # The length field alone condemns the stream: no waiting for a body
        # that would never arrive (the anti-deadlock property).
        with pytest.raises(ProtocolError, match="exceeds the limit"):
            list(decoder.messages())

    def test_undecodable_body_raises(self):
        import struct

        body = b"\xc1\xc1\xc1"  # 0xC1 is the one never-used msgpack byte
        header = struct.pack(">4sBI", proto.PROTOCOL_MAGIC, 10, len(body))
        decoder = proto.MessageDecoder()
        decoder.feed(header + body)
        with pytest.raises(ProtocolError):
            list(decoder.messages())

    def test_non_map_body_raises(self):
        import struct

        from repro.trace.msgpack import packb

        body = packb([1, 2, 3])
        header = struct.pack(">4sBI", proto.PROTOCOL_MAGIC, 10, len(body))
        decoder = proto.MessageDecoder()
        decoder.feed(header + body)
        with pytest.raises(ProtocolError, match="must be a map"):
            list(decoder.messages())

    def test_decode_message_rejects_trailing_bytes(self):
        encoded = proto.encode_message(proto.Stats())
        with pytest.raises(ProtocolError):
            proto.decode_message(encoded + b"x")
        with pytest.raises(ProtocolError):
            proto.decode_message(encoded[:-1])

    def test_registry_codes_are_stable(self):
        # Codes are wire format: changing one breaks cross-version peers.
        assert proto.MESSAGE_TYPES[1] is proto.Hello
        assert proto.MESSAGE_TYPES[3] is proto.Error
        assert proto.MESSAGE_TYPES[18] is proto.PredictionEvent
        # The v2 block is append-only on top of the 22 v1 codes.
        assert proto.MESSAGE_TYPES[23] is proto.SnapshotChunk
        assert proto.MESSAGE_TYPES[24] is proto.ResizeShards
        assert proto.MESSAGE_TYPES[25] is proto.ResizeShardsReply
        assert proto.MESSAGE_TYPES[26] is proto.ExtractJobs
        assert proto.MESSAGE_TYPES[27] is proto.ExtractJobsReply
        assert proto.MESSAGE_TYPES[28] is proto.MetricsReport
        # The zero-pause handover block (double-routed migrations).
        assert proto.MESSAGE_TYPES[29] is proto.BeginHandover
        assert proto.MESSAGE_TYPES[30] is proto.BeginHandoverReply
        assert proto.MESSAGE_TYPES[31] is proto.CompleteHandover
        assert proto.MESSAGE_TYPES[32] is proto.CompleteHandoverReply
        assert proto.MESSAGE_TYPES[33] is proto.AbortHandover
        assert proto.MESSAGE_TYPES[34] is proto.AbortHandoverReply
        assert proto.MESSAGE_TYPES[35] is proto.ReapFinished
        assert proto.MESSAGE_TYPES[36] is proto.ReapFinishedReply
        # The multi-host federation block (remote shards, registry, liveness).
        assert proto.MESSAGE_TYPES[37] is proto.RegisterShard
        assert proto.MESSAGE_TYPES[38] is proto.RegisterShardReply
        assert proto.MESSAGE_TYPES[39] is proto.AttachChannel
        assert proto.MESSAGE_TYPES[40] is proto.Heartbeat
        assert proto.MESSAGE_TYPES[41] is proto.HeartbeatReply
        assert len(set(proto.MESSAGE_TYPES)) == len(proto.MESSAGE_TYPES) == 41


class TestChunkedTransfer:
    @given(
        state=nested_map_st,
        max_chunk=st.integers(min_value=1, max_value=64),
        kind=st.sampled_from(proto.CHUNK_KINDS),
    )
    @settings(max_examples=150, deadline=None)
    def test_chunk_round_trip(self, state, max_chunk, kind):
        chunks = list(proto.iter_state_chunks(state, kind=kind, max_chunk=max_chunk))
        # Bounded size, contiguous seq, exactly one terminal chunk.
        assert all(len(c.data) <= max_chunk for c in chunks)
        assert [c.seq for c in chunks] == list(range(len(chunks)))
        assert [c.last for c in chunks].count(True) == 1 and chunks[-1].last
        assembler = proto.ChunkAssembler()
        rebuilt = None
        for chunk in chunks:
            # ... and every chunk survives the wire codec on the way.
            decoded = proto.decode_message(proto.encode_message(chunk))
            result = assembler.feed(decoded)
            assert (result is not None) == chunk.last
            if result is not None:
                rebuilt = result
        assert rebuilt == _as_lists(state)

    @given(state=nested_map_st, max_chunk=st.integers(1, 32))
    @settings(max_examples=50, deadline=None)
    def test_truncated_chunk_stream_never_yields_state(self, state, max_chunk):
        chunks = list(proto.iter_state_chunks(state, kind="snapshot", max_chunk=max_chunk))
        assembler = proto.ChunkAssembler()
        for chunk in chunks[:-1]:
            assert assembler.feed(chunk) is None
        assert assembler.receiving == (len(chunks) > 1)

    def test_out_of_order_chunk_raises(self):
        chunks = list(
            proto.iter_state_chunks({"k": b"x" * 64}, kind="restore", max_chunk=16)
        )
        assert len(chunks) > 2
        assembler = proto.ChunkAssembler()
        assembler.feed(chunks[0])
        with pytest.raises(ProtocolError, match="out of order"):
            assembler.feed(chunks[2])

    def test_kind_change_mid_transfer_raises(self):
        assembler = proto.ChunkAssembler()
        assembler.feed(proto.SnapshotChunk(kind="restore", seq=0, data=b"ab"))
        with pytest.raises(ProtocolError, match="kind changed"):
            assembler.feed(proto.SnapshotChunk(kind="merge", seq=1, data=b"cd"))

    def test_unexpected_kind_raises(self):
        assembler = proto.ChunkAssembler(expected_kind="snapshot")
        with pytest.raises(ProtocolError, match="expected"):
            assembler.feed(proto.SnapshotChunk(kind="merge", seq=0, data=b""))
        with pytest.raises(ProtocolError, match="kind"):
            proto.SnapshotChunk.from_payload({"kind": "exotic", "seq": 0, "data": b""})

    def test_oversized_chunk_rejected_at_decode(self):
        payload = {
            "kind": "snapshot",
            "seq": 0,
            "data": b"x" * (proto.MAX_CHUNK_BYTES + 1),
            "last": True,
        }
        with pytest.raises(ProtocolError, match="bound"):
            proto.SnapshotChunk.from_payload(payload)

    def test_undecodable_reassembled_state_raises(self):
        assembler = proto.ChunkAssembler()
        with pytest.raises(ProtocolError, match="undecodable"):
            assembler.feed(
                proto.SnapshotChunk(kind="restore", seq=0, data=b"\xc1\xc1", last=True)
            )

    def test_resize_shards_validates_count(self):
        with pytest.raises(ProtocolError):
            proto.ResizeShards.from_payload({"n_shards": 0})

    def test_degenerate_max_chunk_rejected_at_decode(self):
        # max_chunk=0 would make the serving side emit one envelope per
        # state byte — a wire-level DoS, refused before it can be acted on.
        for payload in (
            {"expected_bytes": None, "max_chunk": 0},
            {"expected_bytes": None, "max_chunk": -7},
        ):
            with pytest.raises(ProtocolError, match="max_chunk"):
                proto.Snapshot.from_payload(payload)
            with pytest.raises(ProtocolError, match="max_chunk"):
                proto.ExtractJobs.from_payload({"jobs": ["a"], **payload})
        assert proto.Snapshot.from_payload({"max_chunk": 1}).max_chunk == 1
