"""Chaos/property harness of elastic live resharding.

The contract of :meth:`~repro.service.sharding.ShardedService.reshard` is the
strongest the service can offer: however the shard count changes mid-stream —
grow, shrink, repeatedly, with frames arriving during the migration, with a
target shard kill-9'd halfway through the handover — the end state must be
**bit-identical** to a crash-free run that ingested the same stream at a
fixed topology with the same pump cadence.

The hypothesis test drives randomized interleavings of
{submit frames, pump, reshard up, reshard down, kill -9 mid-migration,
snapshot/restore} against a single-process reference run; the deterministic
test pins the issue's acceptance path (2 → 4 → 1 shards, 32 jobs, one
kill -9 injected during migration).  ``REPRO_SOAK=1`` unlocks a seeded
randomized soak variant on the same machinery.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.benchmark import synthetic_flush_streams
from repro.core import FtioConfig
from repro.exceptions import ServiceError
from repro.service import (
    HashRing,
    PredictionService,
    ServiceConfig,
    SessionConfig,
    ShardedService,
    snapshot_state,
)
from repro.trace.framing import encode_frame

TOKEN = 7


@pytest.fixture(scope="module")
def service_config():
    return ServiceConfig(
        session=SessionConfig(
            config=FtioConfig(
                sampling_frequency=10.0,
                use_autocorrelation=False,
                compute_characterization=False,
            )
        ),
        max_workers=2,
        token=TOKEN,
    )


def frame_for(job_index: int, job: str, flush) -> bytes:
    # Alternate payload formats across jobs: the codec must be transparent.
    payload_format = ("msgpack", "json")[job_index % 2]
    return encode_frame(flush, job=job, payload_format=payload_format, token=TOKEN)


def sessions_by_job(state: dict) -> dict[str, dict]:
    return {session["job"]: session for session in state["sessions"]}


# --------------------------------------------------------------------- #
# the op machinery: one op list drives the elastic run and the reference
# --------------------------------------------------------------------- #
def submit_round(service, streams, round_index: int) -> None:
    for job_index, (job, flushes) in enumerate(streams.items()):
        if round_index < len(flushes):
            service.feed_bytes(frame_for(job_index, job, flushes[round_index]))


def pump_service(service) -> None:
    if isinstance(service, PredictionService):
        service.pump(wait_for_batch=True)
        service.dispatcher.join()
    else:
        service.pump()


def kill_victim(streams, old_count: int, target_count: int) -> int | None:
    """A freshly spawned shard that will receive migrated sessions.

    Killing it mid-migration exercises the respawn-and-resend path; the
    rings are deterministic, so the victim can be computed up front.
    """
    if target_count <= old_count:
        return None
    old_ring = HashRing(old_count)
    new_ring = HashRing(target_count)
    for job in streams:
        owner = new_ring.shard_for(job)
        if owner >= old_count and old_ring.shard_for(job) != owner:
            return owner
    return None


def run_elastic(streams, config, ops, *, start_shards: int = 2) -> dict:
    """Apply ``ops`` to an elastic sharded run; return its final state.

    Ops: ``("submit",)`` next round, ``("pump",)``, ``("reshard", n, kill,
    traffic)`` — ``kill`` injects a kill -9 of a migration target at the
    ring switch, ``traffic`` submits the next round *during* the migration
    (those frames land in the parking buffer) — and ``("snapshot",)``, a
    snapshot + restore round trip through the live service.
    """
    n_rounds = max(len(flushes) for flushes in streams.values())
    sharded = ShardedService(start_shards, config)
    submitted = 0
    killed_mid_migration = 0
    try:
        for op in ops:
            if op[0] == "submit" and submitted < n_rounds:
                submit_round(sharded, streams, submitted)
                submitted += 1
            elif op[0] == "pump":
                pump_service(sharded)
            elif op[0] == "reshard":
                _, target, kill, traffic = op
                old_count = sharded.n_shards
                if target == old_count:
                    # A no-op resize never enters migration — its traffic
                    # round is ingested the ordinary way (as in the
                    # reference run).
                    if traffic and submitted < n_rounds:
                        submit_round(sharded, streams, submitted)
                        submitted += 1
                    continue
                victim = kill_victim(streams, old_count, target) if kill else None
                mid_round = submitted if traffic and submitted < n_rounds else None

                def chaos(phase, victim=victim, mid_round=mid_round):
                    if phase == "parked" and mid_round is not None:
                        assert sharded.resharding
                        assert sharded.stats()["resharding_in_progress"]
                        submit_round(sharded, streams, mid_round)
                    if phase == "switched" and victim is not None:
                        sharded.kill_shard(victim)

                summary = sharded.reshard(target, on_phase=chaos)
                assert summary["to_shards"] == sharded.n_shards == target
                assert sharded.dead_shards() == ()
                if victim is not None:
                    killed_mid_migration += 1
                if mid_round is not None:
                    submitted += 1
            elif op[0] == "snapshot":
                sharded.restore_state(sharded.snapshot_state())
        while submitted < n_rounds:
            submit_round(sharded, streams, submitted)
            submitted += 1
            pump_service(sharded)
        sharded.drain()
        state = sharded.snapshot_state()
        stats = sharded.stats()
        periods = {job: sharded.publisher.latest_period(job) for job in streams}
    finally:
        sharded.close()
    return {
        "state": state,
        "stats": stats,
        "periods": periods,
        "killed": killed_mid_migration,
    }


def run_reference(streams, config, ops) -> dict:
    """The same op cadence on a fixed-topology single-process service."""
    n_rounds = max(len(flushes) for flushes in streams.values())
    service = PredictionService(config)
    submitted = 0
    try:
        for op in ops:
            if op[0] == "submit" and submitted < n_rounds:
                submit_round(service, streams, submitted)
                submitted += 1
            elif op[0] == "pump":
                pump_service(service)
            elif op[0] == "reshard":
                # Topology changes do not exist for the reference — but the
                # in-migration traffic round does.
                traffic = op[3]
                if traffic and submitted < n_rounds:
                    submit_round(service, streams, submitted)
                    submitted += 1
        while submitted < n_rounds:
            submit_round(service, streams, submitted)
            submitted += 1
            pump_service(service)
        service.drain()
        state = snapshot_state(service)
        periods = {job: service.publisher.latest_period(job) for job in streams}
    finally:
        service.close()
    return {"state": state, "periods": periods}


def assert_bit_identical(elastic: dict, reference: dict, streams) -> None:
    ours = sessions_by_job(elastic["state"])
    theirs = sessions_by_job(reference["state"])
    assert set(ours) == set(theirs) == set(streams)
    for job in streams:
        assert ours[job] == theirs[job], job
    assert elastic["state"]["publisher"] == reference["state"]["publisher"]
    assert elastic["periods"] == reference["periods"]


# --------------------------------------------------------------------- #
# deterministic acceptance: 2 -> 4 -> 1 mid-stream, kill -9 included
# --------------------------------------------------------------------- #
class TestReshardAcceptance:
    @pytest.fixture(scope="class")
    def streams(self):
        return synthetic_flush_streams(
            32, flushes_per_job=6, requests_per_flush=16, seed=42
        )

    def test_2_to_4_to_1_mid_stream_bit_identical(self, streams, service_config):
        ops = [
            ("submit",), ("pump",),
            ("submit",), ("pump",),
            ("reshard", 4, True, True),   # grow, kill a target mid-migration,
            ("pump",),                    # with traffic parked during the move
            ("submit",), ("pump",),
            ("reshard", 1, False, True),  # shrink to one shard, again live
            ("pump",),
        ]
        elastic = run_elastic(streams, service_config, ops, start_shards=2)
        reference = run_reference(streams, service_config, ops)
        assert elastic["killed"] == 1, "the kill -9 must actually have happened"
        assert_bit_identical(elastic, reference, streams)
        assert elastic["stats"]["reshards"] == 2
        assert elastic["stats"]["sessions_moved"] > 0
        assert elastic["stats"]["resharding_in_progress"] is False

    def test_reshard_moves_only_the_minimal_set(self, streams, service_config):
        # Consistent hashing: growing 2 -> 4 must not move jobs whose owner
        # did not change, and every moved job must land on a new shard.
        old_ring, new_ring = HashRing(2), HashRing(4)
        expected = sorted(
            job for job in streams if old_ring.shard_for(job) != new_ring.shard_for(job)
        )
        sharded = ShardedService(2, service_config)
        try:
            for job_index, (job, flushes) in enumerate(streams.items()):
                sharded.feed_bytes(frame_for(job_index, job, flushes[0]))
            sharded.pump()
            summary = sharded.reshard(4)
            assert sorted(summary["moved_jobs"]) == expected
            assert 0 < len(expected) < len(streams)
            for job in summary["moved_jobs"]:
                assert new_ring.shard_for(job) >= 2
        finally:
            sharded.close()

    def test_extract_jobs_splits_a_merged_state(self, streams, service_config):
        # The pure per-job split path: extracted + remaining must partition
        # the state exactly, and the extracted half is what a migration
        # carries for those jobs.
        from repro.service import extract_jobs

        sharded = ShardedService(2, service_config)
        try:
            for job_index, (job, flushes) in enumerate(streams.items()):
                sharded.feed_bytes(frame_for(job_index, job, flushes[0]))
            sharded.drain()
            merged = sharded.snapshot_state()
        finally:
            sharded.close()
        wanted = sorted(streams)[:5]
        extracted, remaining = extract_jobs(merged, wanted)
        assert {s["job"] for s in extracted["sessions"]} == set(wanted)
        assert {s["job"] for s in remaining["sessions"]} == set(streams) - set(wanted)
        assert set(extracted["publisher"]["latest"]) == set(wanted)
        assert not set(remaining["publisher"]["latest"]) & set(wanted)
        # Partition, not copy: every session lands in exactly one half.
        both = sessions_by_job(extracted) | sessions_by_job(remaining)
        assert both == sessions_by_job(merged)

    def test_reshard_guards(self, service_config):
        sharded = ShardedService(2, service_config)
        try:
            with pytest.raises(ValueError):
                sharded.reshard(0)
            assert sharded.reshard(2)["moved_sessions"] == 0  # no-op resize
            with pytest.raises(ServiceError, match="already in progress"):
                sharded.reshard(3, on_phase=lambda phase: sharded.reshard(4))
        finally:
            sharded.close()
        with pytest.raises(ServiceError, match="closed"):
            sharded.reshard(3)

    def test_failed_reshard_leaves_a_consistent_retryable_topology(
        self, streams, service_config
    ):
        # A reshard that dies mid-flight (here: the fault-injection hook
        # raising after extraction, before the ring switch) must roll the
        # shard list back to what the ring routes to — so n_shards never
        # lies, and retrying the same resize really reshards instead of
        # short-circuiting as a same-count no-op.
        sharded = ShardedService(2, service_config)
        try:
            for job_index, (job, flushes) in enumerate(streams.items()):
                sharded.feed_bytes(frame_for(job_index, job, flushes[0]))
            sharded.pump()

            class Boom(RuntimeError):
                pass

            def explode(phase):
                if phase == "extracted":
                    raise Boom(phase)

            with pytest.raises(Boom):
                sharded.reshard(4, on_phase=explode)
            assert sharded.n_shards == sharded.ring.n_shards == 2
            assert sharded.dead_shards() == ()
            assert not sharded.resharding
            # The retry is a real reshard this time.
            summary = sharded.reshard(4)
            assert summary["to_shards"] == sharded.n_shards == 4
            assert summary["moved_sessions"] > 0
            # ... and nothing was lost along the way: the already-extracted
            # sessions were pushed back, so finishing the stream converges
            # to the crash-free fixed-topology state bit-exactly.
            sharded.pump()
            n_rounds = max(len(flushes) for flushes in streams.values())
            for round_index in range(1, n_rounds):
                submit_round(sharded, streams, round_index)
                pump_service(sharded)
            sharded.drain()
            merged = sharded.snapshot_state()
            periods = {job: sharded.publisher.latest_period(job) for job in streams}
        finally:
            sharded.close()
        ops = [("submit",), ("pump",)]
        reference = run_reference(streams, service_config, ops)
        assert sessions_by_job(merged) == sessions_by_job(reference["state"])
        assert periods == reference["periods"]


# --------------------------------------------------------------------- #
# property: random interleavings are always bit-identical
# --------------------------------------------------------------------- #
op_st = st.one_of(
    st.tuples(st.just("submit")),
    st.tuples(st.just("pump")),
    st.tuples(st.just("reshard"), st.integers(1, 5), st.booleans(), st.booleans()),
    st.tuples(st.just("snapshot")),
)


class TestReshardProperties:
    @pytest.fixture(scope="class")
    def streams(self):
        return synthetic_flush_streams(6, flushes_per_job=4, requests_per_flush=8, seed=9)

    @given(ops=st.lists(op_st, min_size=3, max_size=8))
    @settings(
        max_examples=8,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow, HealthCheck.function_scoped_fixture],
    )
    def test_chaotic_interleavings_bit_identical(self, ops, streams, service_config):
        elastic = run_elastic(streams, service_config, ops, start_shards=2)
        reference = run_reference(streams, service_config, ops)
        assert_bit_identical(elastic, reference, streams)


# --------------------------------------------------------------------- #
# hash-seed determinism regression (the HashRing satellite)
# --------------------------------------------------------------------- #
_RING_SCRIPT = """
import json
from repro.service import HashRing

jobs = [f"job-{i:03d}" for i in range(200)]
rings = {n: HashRing(n) for n in (1, 2, 4, 5)}
out = {
    "owners": {str(n): [ring.shard_for(j) for j in jobs] for n, ring in rings.items()},
    # the moved sets of 2->1, 1->4 and 4->5 reshards, exactly as reshard()
    # computes them (sorted, so set-iteration order cannot leak in)
    "moves": {
        f"{a}->{b}": sorted(
            j for j in jobs if rings[a].shard_for(j) != rings[b].shard_for(j)
        )
        for a, b in ((2, 1), (1, 4), (4, 5))
    },
}
print(json.dumps(out, sort_keys=True))
"""


class TestHashSeedDeterminism:
    def test_ring_and_move_sets_identical_across_hash_seeds(self):
        """Resizing to 1 shard and back must behave identically no matter the
        interpreter's hash randomization (PYTHONHASHSEED)."""
        results = []
        for seed in ("0", "1", "271828"):
            env = dict(os.environ)
            env["PYTHONHASHSEED"] = seed
            env["PYTHONPATH"] = os.pathsep.join(
                p for p in ("src", env.get("PYTHONPATH", "")) if p
            )
            proc = subprocess.run(
                [sys.executable, "-c", _RING_SCRIPT],
                capture_output=True,
                text=True,
                env=env,
                cwd=os.path.dirname(os.path.dirname(os.path.dirname(__file__))),
                check=True,
            )
            results.append(json.loads(proc.stdout))
        assert results[0] == results[1] == results[2]
        # ... and they match this process's rings, seed notwithstanding.
        jobs = [f"job-{i:03d}" for i in range(200)]
        for n in (1, 2, 4, 5):
            ring = HashRing(n)
            assert results[0]["owners"][str(n)] == [ring.shard_for(j) for j in jobs]

    def test_to_one_shard_and_back_restores_the_exact_ring(self, service_config):
        # reshard(1) followed by reshard(4) must route exactly like a fresh
        # 4-shard service — the ring is rebuilt from the count alone, never
        # from accumulated state.
        streams = synthetic_flush_streams(8, flushes_per_job=2, seed=5)
        sharded = ShardedService(4, service_config)
        try:
            for job_index, (job, flushes) in enumerate(streams.items()):
                sharded.feed_bytes(frame_for(job_index, job, flushes[0]))
            sharded.pump()
            sharded.reshard(1)
            sharded.reshard(4)
            fresh = HashRing(4)
            for job in streams:
                assert sharded.shard_for(job) == fresh.shard_for(job)
        finally:
            sharded.close()


# --------------------------------------------------------------------- #
# REPRO_SOAK=1: seeded randomized soak on the same machinery
# --------------------------------------------------------------------- #
@pytest.mark.slow
@pytest.mark.skipif(
    not os.environ.get("REPRO_SOAK"),
    reason="soak test only runs when REPRO_SOAK=1 (CI nightly job)",
)
class TestReshardSoak:
    def test_randomized_reshard_soak(self, service_config):
        """Seeded random op soup until the wall-clock budget runs out.

        Each round of the soak draws a fresh random op list (reshards with
        and without kill -9 / in-migration traffic included) and asserts the
        bit-identical property; the seed makes any failure reproducible from
        the round number alone.
        """
        budget = float(os.environ.get("REPRO_SOAK_SECONDS", "60"))
        streams = synthetic_flush_streams(
            16, flushes_per_job=8, requests_per_flush=8, seed=13
        )
        deadline = time.monotonic() + budget
        rounds = 0
        total_reshards = 0
        while time.monotonic() < deadline:
            rng = np.random.default_rng(20_260_729 + rounds)
            ops: list[tuple] = []
            for _ in range(int(rng.integers(6, 16))):
                roll = rng.random()
                if roll < 0.40:
                    ops.append(("submit",))
                elif roll < 0.70:
                    ops.append(("pump",))
                elif roll < 0.92:
                    ops.append(
                        (
                            "reshard",
                            int(rng.integers(1, 6)),
                            bool(rng.random() < 0.5),
                            bool(rng.random() < 0.5),
                        )
                    )
                else:
                    ops.append(("snapshot",))
            elastic = run_elastic(streams, service_config, ops, start_shards=2)
            reference = run_reference(streams, service_config, ops)
            assert_bit_identical(elastic, reference, streams)
            total_reshards += elastic["stats"]["reshards"]
            rounds += 1
        assert rounds >= 1
        assert total_reshards >= 1, "the soak must actually have resharded"
