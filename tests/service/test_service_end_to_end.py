"""End-to-end acceptance tests of the streaming prediction service.

Two closed loops are exercised:

1. **Streaming equivalence** — 16+ concurrent synthetic periodic jobs are
   framed, interleaved and streamed through the broker; every job's published
   prediction sequence must equal the offline ``replay_online`` result on the
   same data.
2. **Live scheduling** — the cluster simulator's phases are bridged into the
   service, and ``Set10Scheduler`` driven by ``ServicePeriodProvider`` must
   reproduce the classic FTIO-configuration results within tolerance
   (the paper's Figure 17 pipeline, end to end).
"""

from __future__ import annotations

import pytest

from repro.cluster.simulator import ClusterSimulator
from repro.core import FtioConfig
from repro.core.online import replay_online
from repro.scheduling.experiment import SchedulingExperiment
from repro.scheduling.metrics import evaluate, isolated_baselines
from repro.scheduling.periods import ServicePeriodProvider
from repro.scheduling.set10 import Set10Scheduler
from repro.service import (
    PhaseFlushBridge,
    PredictionService,
    ServiceConfig,
    SessionConfig,
)
from repro.trace.framing import encode_frame
from repro.trace.jsonl import trace_to_flushes
from repro.utils.rng import as_generator
from repro.workloads.hacc import hacc_flush_times, hacc_io_trace

N_JOBS = 16


@pytest.fixture(scope="module")
def online_config():
    return FtioConfig(
        sampling_frequency=10.0, use_autocorrelation=False, compute_characterization=False
    )


@pytest.fixture(scope="module")
def job_traces(online_config):
    """16 concurrent periodic jobs with different periods, phases and sizes."""
    traces = {}
    for j in range(N_JOBS):
        traces[f"job-{j:02d}"] = hacc_io_trace(
            ranks=2 + (j % 3),
            loops=8,
            period=6.0 + 0.5 * j,
            first_phase_delay=3.0 + 0.25 * j,
            seed=100 + j,
        )
    return traces


class TestStreamingEquivalence:
    def test_16_jobs_match_offline_replay(self, online_config, job_traces):
        # The cap must sit above the largest per-job stream for the streamed
        # predictions to be bit-identical with the unbounded offline replay
        # (the adaptive window still evicts most of it, as asserted below).
        service = PredictionService(
            ServiceConfig(
                session=SessionConfig(config=online_config, max_samples=200_000),
                max_workers=4,
            )
        )
        streams = {
            job: trace_to_flushes(trace, hacc_flush_times(trace))
            for job, trace in job_traces.items()
        }
        n_rounds = max(len(flushes) for flushes in streams.values())
        payload_formats = ("msgpack", "json")
        for round_index in range(n_rounds):
            # One frame per job per round, interleaved: the broker must
            # demultiplex 16 concurrent streams correctly.
            for j, (job, flushes) in enumerate(streams.items()):
                if round_index < len(flushes):
                    service.feed_bytes(
                        encode_frame(
                            flushes[round_index],
                            job=job,
                            payload_format=payload_formats[j % 2],
                        )
                    )
            service.pump(wait_for_batch=True)
        service.dispatcher.join()

        assert len(service.jobs) == N_JOBS
        for job, trace in job_traces.items():
            reference = replay_online(trace, hacc_flush_times(trace), config=online_config)
            session = service.session(job)
            streamed = session.predictor.history
            assert [s.period for s in streamed] == [s.period for s in reference], job
            assert [s.window for s in streamed] == [s.window for s in reference], job
            assert service.publisher.latest_period(job) == pytest.approx(
                reference[-1].period
            ), job
            # Bounded memory: the adaptive window evicted most of the history.
            assert session.evicted_samples > 0, job
        service.close()

    def test_subscribers_see_every_published_update(self, online_config, job_traces):
        job, trace = next(iter(job_traces.items()))
        service = PredictionService(ServiceConfig(session=SessionConfig(config=online_config)))
        seen = []
        service.publisher.subscribe(seen.append, jobs=[job])
        ignored = []
        service.publisher.subscribe(ignored.append, jobs=["someone-else"])
        for flush in trace_to_flushes(trace, hacc_flush_times(trace)):
            service.ingest_flush(job, flush)
            service.pump(wait_for_batch=True)
        assert len(seen) == service.session(job).detections
        assert [u.job for u in seen] == [job] * len(seen)
        assert ignored == []


class TestLiveScheduling:
    def test_service_driven_set10_matches_ftio_configuration(self):
        """ServicePeriodProvider + Set10Scheduler vs the in-process FtioPeriods."""
        experiment = SchedulingExperiment()
        seed = 17

        classic = experiment.run_configuration("set10-ftio", seed=seed)
        original = experiment.run_configuration("original", seed=seed)

        rng = as_generator(seed)
        jobs = experiment.build_jobs(seed=rng)
        filesystem = experiment.filesystem()
        service = PredictionService(
            ServiceConfig(
                session=SessionConfig(
                    config=FtioConfig(
                        sampling_frequency=1.0,
                        use_autocorrelation=False,
                        compute_characterization=False,
                    ),
                    adaptive_window=False,
                    min_requests=3,
                )
            )
        )
        provider = service.period_provider()
        assert isinstance(provider, ServicePeriodProvider)
        scheduler = Set10Scheduler(provider)
        scheduler.name = "set10-service"
        bridge = PhaseFlushBridge(service)
        simulator = ClusterSimulator(
            filesystem,
            scheduler,
            jobs,
            phase_observers=[bridge],
            finish_observers=[bridge.on_job_finished],
        )
        result = simulator.run()
        metrics = evaluate(result, isolated_baselines(jobs, filesystem))
        service.close()

        # The live loop must reproduce the FTIO-configuration results within
        # tolerance (it is the same pipeline, fed through the service).
        assert metrics.io_slowdown == pytest.approx(classic.metrics.io_slowdown, rel=0.10)
        assert metrics.stretch == pytest.approx(classic.metrics.stretch, rel=0.05)
        assert metrics.utilization == pytest.approx(classic.metrics.utilization, rel=0.05)
        # ... and clearly beat the unmodified file system (Figure 17 ordering).
        assert metrics.io_slowdown < 0.6 * original.metrics.io_slowdown
        assert metrics.utilization > original.metrics.utilization

        # Every job was served by the service, and the high-frequency job's
        # period estimate converged to its true 19.2 s period.
        assert len(service.jobs) == len(jobs)
        high_period = service.publisher.latest_period("high-0")
        assert high_period == pytest.approx(19.2, rel=0.15)

    def test_finish_observer_closes_sessions(self):
        experiment = SchedulingExperiment()
        rng = as_generator(3)
        jobs = experiment.build_jobs(seed=rng)
        service = PredictionService(
            ServiceConfig(
                session=SessionConfig(
                    config=FtioConfig(
                        sampling_frequency=1.0,
                        use_autocorrelation=False,
                        compute_characterization=False,
                    ),
                    adaptive_window=False,
                    min_requests=3,
                )
            )
        )
        bridge = PhaseFlushBridge(service)
        scheduler = Set10Scheduler(service.period_provider())
        simulator = ClusterSimulator(
            experiment.filesystem(),
            scheduler,
            jobs,
            phase_observers=[bridge],
            finish_observers=[bridge.on_job_finished],
        )
        simulator.run()
        assert all(service.session(job.name).finished for job in jobs)
        service.close()
