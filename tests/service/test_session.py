"""Unit tests for bounded-memory job sessions and the ring column store."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import FtioConfig
from repro.service import JobSession, RingColumnStore, SessionConfig
from repro.trace.jsonl import FlushRecord, trace_to_flushes
from repro.trace.record import IORequest
from repro.trace.trace import Trace
from repro.workloads.hacc import hacc_flush_times, hacc_io_trace


@pytest.fixture(scope="module")
def online_config():
    return FtioConfig(
        sampling_frequency=10.0, use_autocorrelation=False, compute_characterization=False
    )


def chunk(start: float, n: int = 4, *, gap: float = 1.0) -> Trace:
    return Trace.from_requests(
        [
            IORequest(rank=0, start=start + i * gap, end=start + i * gap + 0.5, nbytes=100)
            for i in range(n)
        ]
    )


class TestRingColumnStore:
    def test_append_and_trace_round_trip(self):
        store = RingColumnStore(initial_capacity=2)
        store.append(chunk(0.0))
        store.append(chunk(10.0))
        assert len(store) == 8
        trace = store.trace(metadata={"a": 1})
        assert list(trace.starts) == sorted(trace.starts)
        assert trace.metadata == {"a": 1}
        assert trace.volume == 800

    def test_growth_is_geometric(self):
        store = RingColumnStore(initial_capacity=4)
        for i in range(64):
            store.append(chunk(float(i * 10), 4))
        assert len(store) == 256
        assert store.capacity >= 256
        # Power-of-two growth from the initial capacity.
        assert store.capacity & (store.capacity - 1) == 0

    def test_out_of_order_chunk_is_merged_sorted(self):
        store = RingColumnStore()
        store.append(chunk(10.0))
        store.append(chunk(0.0))
        trace = store.trace()
        assert list(trace.starts) == sorted(trace.starts)
        assert len(trace) == 8

    def test_evict_completed_before(self):
        store = RingColumnStore()
        store.append(chunk(0.0, 10))
        dropped = store.evict_completed_before(4.0)
        assert dropped == 4
        assert len(store) == 6
        assert store.evicted == 4
        assert float(store.trace().starts.min()) == 4.0

    def test_evict_to_cap_drops_oldest(self):
        store = RingColumnStore()
        store.append(chunk(0.0, 10))
        assert store.evict_to_cap(3) == 7
        trace = store.trace()
        assert len(trace) == 3
        assert float(trace.starts.min()) == 7.0

    def test_trace_is_a_stable_copy(self):
        store = RingColumnStore()
        store.append(chunk(0.0))
        before = store.trace()
        store.evict_to_cap(1)
        store.append(chunk(100.0, 8))
        assert len(before) == 4
        assert float(before.starts.min()) == 0.0


class TestJobSession:
    def test_memory_plateaus_at_cap(self, online_config):
        """Acceptance criterion: resident size plateaus at the window cap."""
        cap = 400
        session = JobSession(
            "long-runner",
            SessionConfig(config=online_config, max_samples=cap),
        )
        resident_after_each_flush = []
        for i in range(60):
            requests = tuple(
                IORequest(rank=r, start=i * 8.0 + r * 0.01, end=i * 8.0 + 0.5, nbytes=1024)
                for r in range(50)
            )
            session.ingest(
                FlushRecord(flush_index=i, timestamp=i * 8.0 + 1.0, requests=requests)
            )
            resident_after_each_flush.append(session.resident_samples)
            session.detect()
        assert session.ingested_requests == 3000
        assert max(resident_after_each_flush) <= cap
        # The tail of the run sits exactly at the plateau, not below-and-oscillating.
        assert all(r <= cap for r in resident_after_each_flush[-10:])
        assert session.evicted_samples >= session.ingested_requests - cap
        # The predictor history is compact too: no full FtioResult (spectrum,
        # signal) is retained per evaluation, only the restored-result shim.
        from repro.core.online import RestoredResult

        assert all(
            s.result is None or isinstance(s.result, RestoredResult)
            for s in session.predictor.history
        )

    def test_adaptive_window_eviction_reduces_memory(self, online_config):
        trace = hacc_io_trace(ranks=8, loops=10, period=8.0, first_phase_delay=6.0, seed=5)
        flushes = trace_to_flushes(trace, hacc_flush_times(trace))
        session = JobSession("hacc", SessionConfig(config=online_config))
        for flush in flushes:
            session.ingest(flush)
            session.detect()
        # The adaptive window shrank to ~3 periods, so about half of the
        # 10-loop history must have been evicted without any cap pressure.
        assert session.evicted_samples > 0
        assert session.resident_samples <= session.ingested_requests * 0.6

    def test_min_requests_skips_early_detections(self, online_config):
        session = JobSession("tiny", SessionConfig(config=online_config, min_requests=10))
        session.ingest(
            FlushRecord(
                flush_index=0,
                timestamp=1.0,
                requests=(IORequest(rank=0, start=0.0, end=0.5, nbytes=10),),
            )
        )
        assert session.due()
        assert session.detect() is None
        assert session.detections == 0
        assert not session.due()

    def test_rate_limit_in_trace_time(self, online_config):
        session = JobSession(
            "chatty",
            SessionConfig(config=online_config, min_detection_interval=5.0),
        )
        req = IORequest(rank=0, start=0.0, end=0.5, nbytes=10)
        session.ingest(FlushRecord(flush_index=0, timestamp=1.0, requests=(req,)))
        assert session.due()
        session.detect()
        # 2 seconds later: rate-limited.
        session.ingest(FlushRecord(flush_index=1, timestamp=3.0, requests=(req,)))
        assert not session.due()
        # 6 seconds after the first evaluation: due again, and the evaluation
        # covers both pending flushes at once (coalescing).
        session.ingest(FlushRecord(flush_index=2, timestamp=7.0, requests=(req,)))
        assert session.due()
        step = session.detect()
        assert step is not None and step.time == 7.0

    def test_finished_session_bypasses_rate_limit(self, online_config):
        session = JobSession(
            "ending",
            SessionConfig(config=online_config, min_detection_interval=100.0),
        )
        req = IORequest(rank=0, start=0.0, end=0.5, nbytes=10)
        session.ingest(FlushRecord(flush_index=0, timestamp=1.0, requests=(req,)))
        session.detect()
        # The final flush lands inside the rate-limit interval...
        session.ingest(FlushRecord(flush_index=1, timestamp=2.0, requests=(req,)))
        assert not session.due()
        # ... but once the job is finished no later flush will carry it past
        # the interval, so it must become due immediately.
        session.mark_finished()
        assert session.due()
        step = session.detect()
        assert step is not None and step.time == 2.0
        assert not session.due()

    def test_metadata_merged_across_flushes(self, online_config):
        session = JobSession("meta", SessionConfig(config=online_config))
        req = IORequest(rank=0, start=0.0, end=0.5, nbytes=10)
        session.ingest(
            FlushRecord(flush_index=0, timestamp=1.0, requests=(req,), metadata={"app": "x"})
        )
        session.ingest(
            FlushRecord(flush_index=1, timestamp=2.0, requests=(), metadata={"ranks": 4})
        )
        assert session.metadata == {"app": "x", "ranks": 4}

    def test_session_matches_unbounded_replay(self, online_config):
        """Eviction must not change the prediction sequence (margin at work)."""
        from repro.core.online import replay_online

        trace = hacc_io_trace(ranks=8, loops=12, period=8.0, first_phase_delay=6.0, seed=9)
        times = hacc_flush_times(trace)
        reference = replay_online(trace, times, config=online_config)

        session = JobSession(
            "hacc", SessionConfig(config=online_config, max_samples=500_000)
        )
        steps = []
        for flush in trace_to_flushes(trace, times):
            session.ingest(flush)
            step = session.detect()
            if step is not None:
                steps.append(step)
        assert [s.period for s in steps] == [s.period for s in reference]
        assert [s.window for s in steps] == [s.window for s in reference]
        assert np.isclose(
            session.latest_period(), reference[-1].period, rtol=0, atol=0
        )
