"""Acceptance tests of the sharded multi-process prediction service.

The contract of sharding is *transparency*: because sessions are independent
and lock-isolated, distributing them over worker subprocesses must change no
prediction.  The tests here drive 32 concurrent jobs through a 4-shard
service and a single-process service on identical framed input and assert
the full per-session state — predictor step histories, resident buffers,
counters — is **bit-identical**, then do the same across a kill -9 of a
shard followed by snapshot restore and spool-tail replay.
"""

from __future__ import annotations

import pytest

from repro.analysis.benchmark import synthetic_flush_streams
from repro.core import FtioConfig
from repro.service import (
    HashRing,
    PredictionService,
    ServiceConfig,
    SessionConfig,
    ShardedService,
    restore_state,
)
from repro.trace.framing import FrameWriter, encode_frame

N_JOBS = 32
N_SHARDS = 4


@pytest.fixture(scope="module")
def service_config():
    return ServiceConfig(
        session=SessionConfig(
            config=FtioConfig(
                sampling_frequency=10.0,
                use_autocorrelation=False,
                compute_characterization=False,
            )
        ),
        max_workers=2,
    )


@pytest.fixture(scope="module")
def streams():
    """32 heterogeneous periodic jobs, 6 flushes each."""
    return synthetic_flush_streams(N_JOBS, flushes_per_job=6, requests_per_flush=16, seed=42)


def frame_for(job_index: int, job: str, flush, token: int | None) -> bytes:
    # Alternate payload formats across jobs: the codec must be transparent.
    payload_format = ("msgpack", "json")[job_index % 2]
    return encode_frame(flush, job=job, payload_format=payload_format, token=token)


def run_single(streams, config, *, token: int | None = None) -> dict:
    service = PredictionService(config)
    n_rounds = max(len(flushes) for flushes in streams.values())
    for round_index in range(n_rounds):
        for job_index, (job, flushes) in enumerate(streams.items()):
            if round_index < len(flushes):
                service.feed_bytes(frame_for(job_index, job, flushes[round_index], token))
        service.pump(wait_for_batch=True)
    service.drain()
    from repro.service import snapshot_state

    state = snapshot_state(service)
    periods = {job: service.publisher.latest_period(job) for job in streams}
    service.close()
    return {"state": state, "periods": periods}


def sessions_by_job(state: dict) -> dict[str, dict]:
    return {session["job"]: session for session in state["sessions"]}


class TestHashRing:
    def test_deterministic_and_total(self):
        ring = HashRing(N_SHARDS)
        again = HashRing(N_SHARDS)
        for j in range(500):
            job = f"job-{j:03d}"
            assert ring.shard_for(job) == again.shard_for(job)
            assert 0 <= ring.shard_for(job) < N_SHARDS

    def test_balanced_across_shards(self):
        ring = HashRing(N_SHARDS)
        counts = [0] * N_SHARDS
        for j in range(2000):
            counts[ring.shard_for(f"job-{j}")] += 1
        # 64 virtual nodes keep the imbalance moderate.
        assert min(counts) > 0
        assert max(counts) < 2.5 * (2000 / N_SHARDS)

    def test_consistency_under_shard_count_change(self):
        before = HashRing(4)
        after = HashRing(5)
        jobs = [f"job-{j}" for j in range(2000)]
        moved = sum(before.shard_for(j) != after.shard_for(j) for j in jobs)
        # Consistent hashing: growing 4 -> 5 shards should move roughly 1/5
        # of the keys, nowhere near the ~4/5 a modulo re-hash would move.
        assert moved / len(jobs) < 0.45

    def test_validation(self):
        with pytest.raises(ValueError):
            HashRing(0)
        with pytest.raises(ValueError):
            HashRing(2, replicas=0)


class TestShardedEquivalence:
    def test_32_jobs_bit_identical_to_single_process(self, streams, service_config):
        token = 9
        reference = run_single(streams, service_config, token=token)

        sharded = ShardedService(N_SHARDS, service_config, token=token)
        try:
            n_rounds = max(len(flushes) for flushes in streams.values())
            for round_index in range(n_rounds):
                for job_index, (job, flushes) in enumerate(streams.items()):
                    if round_index < len(flushes):
                        sharded.feed_bytes(
                            frame_for(job_index, job, flushes[round_index], token)
                        )
                sharded.pump()
            sharded.drain()

            # Every shard served some jobs.
            owners = {sharded.shard_for(job) for job in streams}
            assert owners == set(range(N_SHARDS))

            # Published periods match exactly.
            for job in streams:
                assert sharded.publisher.latest_period(job) == reference["periods"][job], job

            # Full per-session state is bit-identical: predictor histories
            # (periods, windows, times, confidences), resident buffers,
            # metadata and counters.
            merged = sharded.snapshot_state()
            ours = sessions_by_job(merged)
            theirs = sessions_by_job(reference["state"])
            assert set(ours) == set(theirs) == set(streams)
            for job in streams:
                assert ours[job] == theirs[job], job
            assert merged["publisher"] == reference["state"]["publisher"]

            # Aggregated stats add up across shards.
            broker = sharded.broker_stats
            total_flushes = sum(len(f) for f in streams.values())
            assert broker.jobs == N_JOBS
            assert broker.frames == broker.flushes == total_flushes
            dispatch = sharded.dispatcher_stats
            assert dispatch.completed == dispatch.submitted > 0
            assert dispatch.failures == 0 and dispatch.pending == 0
        finally:
            sharded.close()

    def test_merged_snapshot_restores_into_single_process(self, streams, service_config):
        token = 2
        sharded = ShardedService(N_SHARDS, service_config, token=token)
        try:
            for job_index, (job, flushes) in enumerate(streams.items()):
                for flush in flushes[:3]:
                    sharded.feed_bytes(frame_for(job_index, job, flush, token))
                sharded.pump()
            sharded.drain()
            merged = sharded.snapshot_state()
            periods = {job: sharded.publisher.latest_period(job) for job in streams}
        finally:
            sharded.close()

        single = restore_state(merged, config=service_config)
        try:
            assert set(single.jobs) == set(streams)
            for job in streams:
                assert single.publisher.latest_period(job) == periods[job], job
        finally:
            single.close()

    def test_merged_snapshot_restores_onto_other_shard_count(self, streams, service_config):
        jobs = dict(list(streams.items())[:8])
        sharded = ShardedService(N_SHARDS, service_config)
        try:
            for job, flushes in jobs.items():
                for flush in flushes[:3]:
                    sharded.ingest_flush(job, flush)
            sharded.drain()
            merged = sharded.snapshot_state()
            periods = {job: sharded.publisher.latest_period(job) for job in jobs}
        finally:
            sharded.close()

        smaller = ShardedService(2, service_config)
        try:
            smaller.restore_state(merged)
            assert set(smaller.jobs) == set(jobs)
            for job in jobs:
                assert smaller.publisher.latest_period(job) == periods[job], job
        finally:
            smaller.close()


class TestProcessPoolBackend:
    def test_process_backend_bit_identical_to_thread_backend(self, service_config):
        streams = synthetic_flush_streams(4, flushes_per_job=6, seed=7)

        def run(backend: str) -> dict:
            config = ServiceConfig(
                session=service_config.session,
                max_workers=2,
                backend=backend,
                backend_workers=2,
            )
            service = PredictionService(config)
            for job, flushes in streams.items():
                for flush in flushes:
                    service.ingest_flush(job, flush)
                    service.pump(wait_for_batch=True)
            service.dispatcher.join()
            histories = {
                job: [
                    (s.index, s.time, s.window, s.period, s.confidence)
                    for s in service.session(job).predictor.history
                ]
                for job in streams
            }
            service.close()
            return histories

        assert run("thread") == run("process")

    def test_unknown_backend_rejected(self):
        from repro.service import make_backend

        with pytest.raises(ValueError):
            make_backend("quantum")


class TestCrashRecovery:
    def test_kill9_restore_replay_converges(self, service_config, tmp_path):
        """Kill -9 a shard mid-stream; snapshot + spool replay must converge
        to the exact predictions of a run that never crashed."""
        token = 5
        streams = synthetic_flush_streams(8, flushes_per_job=9, seed=11)
        n_rounds = max(len(flushes) for flushes in streams.values())
        spool = tmp_path / "spool.fts"
        writer = FrameWriter(spool, payload_format="msgpack", token=token)

        sharded = ShardedService(N_SHARDS, service_config, token=token)
        try:
            tail = sharded.tail_file(spool)

            def stream_round(round_index: int) -> None:
                for job, flushes in streams.items():
                    if round_index < len(flushes):
                        writer.write(flushes[round_index], job=job)
                tail.poll()
                sharded.pump()

            third = n_rounds // 3
            for round_index in range(third):
                stream_round(round_index)
            snapshot = sharded.snapshot_state()
            snapshot_offset = tail.offset

            # Keep streaming past the snapshot, then pull the plug: the
            # victim's post-snapshot in-memory state is gone for good.
            for round_index in range(third, 2 * third):
                stream_round(round_index)
            victim = sharded.shard_for(next(iter(streams)))
            sharded.kill_shard(victim)
            assert sharded.dead_shards() == (victim,)

            replayed = sharded.revive_shard(
                victim, state=snapshot, spool=spool, spool_offset=snapshot_offset
            )
            assert replayed > 0, "frames written since the snapshot must be replayed"
            assert sharded.dead_shards() == ()

            for round_index in range(2 * third, n_rounds):
                stream_round(round_index)
            sharded.drain()

            merged = sharded.snapshot_state()
            periods = {job: sharded.publisher.latest_period(job) for job in streams}
        finally:
            sharded.close()

        reference = run_single(streams, service_config, token=token)
        assert periods == reference["periods"]
        ours = sessions_by_job(merged)
        theirs = sessions_by_job(reference["state"])
        for job in streams:
            assert ours[job]["predictor"] == theirs[job]["predictor"], job
            assert ours[job]["buffer"] == theirs[job]["buffer"], job
