"""Snapshot/restore tests: a restored service continues as if it never crashed."""

from __future__ import annotations

import pytest

from repro.core import FtioConfig
from repro.exceptions import TraceFormatError
from repro.service import (
    PredictionService,
    ServiceConfig,
    SessionConfig,
    load_snapshot,
    restore_state,
    save_snapshot,
    snapshot_state,
)
from repro.trace.jsonl import trace_to_flushes
from repro.trace.msgpack import packb, unpackb
from repro.workloads.hacc import hacc_flush_times, hacc_io_trace


@pytest.fixture(scope="module")
def online_config():
    return FtioConfig(
        sampling_frequency=10.0, use_autocorrelation=False, compute_characterization=False
    )


@pytest.fixture(scope="module")
def service_config(online_config):
    return ServiceConfig(session=SessionConfig(config=online_config))


@pytest.fixture(scope="module")
def streams():
    jobs = {}
    for j in range(3):
        trace = hacc_io_trace(
            ranks=4, loops=8, period=7.0 + j, first_phase_delay=4.0, seed=40 + j
        )
        jobs[f"job-{j}"] = trace_to_flushes(trace, hacc_flush_times(trace))
    return jobs


def stream_through(service, streams, *, start=0, stop=None):
    for job, flushes in streams.items():
        for flush in flushes[start:stop]:
            service.ingest_flush(job, flush)
            service.pump(wait_for_batch=True)
    return service


class TestSnapshotRestore:
    def test_restored_service_continues_identically(self, service_config, streams, tmp_path):
        uninterrupted = stream_through(PredictionService(service_config), streams)

        crashed = stream_through(PredictionService(service_config), streams, stop=4)
        path = save_snapshot(crashed, tmp_path / "service.snapshot")
        assert path.exists() and path.stat().st_size > 0

        restored = load_snapshot(path, config=service_config)
        stream_through(restored, streams, start=4)

        for job in streams:
            a = uninterrupted.session(job)
            b = restored.session(job)
            assert [s.period for s in a.predictor.history] == [
                s.period for s in b.predictor.history
            ], job
            assert [s.window for s in a.predictor.history] == [
                s.window for s in b.predictor.history
            ], job
            assert uninterrupted.publisher.latest_period(
                job
            ) == restored.publisher.latest_period(job), job
            assert a.ingested_flushes == b.ingested_flushes
            assert a.detections == b.detections

    def test_snapshot_preserves_published_predictions(self, service_config, streams):
        service = stream_through(PredictionService(service_config), streams)
        restored = restore_state(snapshot_state(service), config=service_config)
        for job in streams:
            before = service.publisher.latest(job)
            after = restored.publisher.latest(job)
            assert before is not None and after is not None
            assert (before.index, before.time, before.period) == (
                after.index,
                after.time,
                after.period,
            )

    def test_snapshot_preserves_merged_intervals(self, service_config, streams):
        service = stream_through(PredictionService(service_config), streams)
        restored = restore_state(snapshot_state(service), config=service_config)
        for job in streams:
            original = service.session(job).predictor.merged_intervals()
            recovered = restored.session(job).predictor.merged_intervals()
            assert [(i.low, i.high, i.probability) for i in original] == [
                (i.low, i.high, i.probability) for i in recovered
            ]

    def test_snapshot_is_plain_msgpack(self, service_config, streams, tmp_path):
        service = stream_through(PredictionService(service_config), streams, stop=2)
        path = save_snapshot(service, tmp_path / "service.snapshot")
        decoded = unpackb(path.read_bytes())
        assert decoded["snapshot_version"] == 1
        assert {s["job"] for s in decoded["sessions"]} == set(streams)

    def test_unknown_snapshot_version_rejected(self, service_config):
        with pytest.raises(TraceFormatError):
            restore_state({"snapshot_version": 999, "sessions": [], "publisher": {}})

    def test_corrupt_snapshot_file_rejected(self, tmp_path, service_config):
        path = tmp_path / "bad.snapshot"
        path.write_bytes(packb([1, 2, 3]))
        with pytest.raises(TraceFormatError):
            load_snapshot(path, config=service_config)
