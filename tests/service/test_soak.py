"""Seeded-random soak test of the sharded service (nightly CI job).

64 jobs of mixed JSONL/MessagePack traffic stream through a 4-shard service
for a wall-clock budget (default 60 s, ``REPRO_SOAK_SECONDS`` overrides).
The assertion is the bounded-memory contract scaled out: aggregate resident
samples must stay O(window) — flat over time — exactly as the single-session
tests assert, no matter how long the run or how many tenants.

Opt-in: set ``REPRO_SOAK=1`` (the CI soak job does).  The test is also
marked ``slow`` so explicit deselection works locally (``-m "not slow"``).
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.core import FtioConfig
from repro.service import ServiceConfig, SessionConfig, ShardedService
from repro.trace.framing import encode_frame
from repro.trace.jsonl import FlushRecord
from repro.trace.record import IORequest

N_JOBS = 64
N_SHARDS = 4
MAX_SAMPLES = 2_048

pytestmark = [
    pytest.mark.slow,
    pytest.mark.skipif(
        not os.environ.get("REPRO_SOAK"),
        reason="soak test only runs when REPRO_SOAK=1 (CI nightly job)",
    ),
]


def soak_seconds() -> float:
    return float(os.environ.get("REPRO_SOAK_SECONDS", "60"))


def make_flush(rng: np.random.Generator, index: int, period: float) -> FlushRecord:
    start = index * period
    n = int(rng.integers(4, 12))
    starts = start + rng.uniform(0.0, period / 8.0, size=n)
    starts.sort()
    requests = tuple(
        IORequest(
            rank=int(rng.integers(0, 8)),
            start=float(s),
            end=float(s + rng.uniform(0.01, period / 16.0)),
            nbytes=int(rng.integers(1 << 10, 1 << 22)),
        )
        for s in starts
    )
    return FlushRecord(flush_index=index, timestamp=float(start + period / 4.0), requests=requests)


def test_sharded_soak_memory_stays_bounded():
    rng = np.random.default_rng(2026)
    periods = {f"job-{j:03d}": float(rng.uniform(4.0, 16.0)) for j in range(N_JOBS)}
    config = ServiceConfig(
        session=SessionConfig(
            config=FtioConfig(
                sampling_frequency=10.0,
                use_autocorrelation=False,
                compute_characterization=False,
            ),
            max_samples=MAX_SAMPLES,
        ),
        max_workers=2,
    )
    service = ShardedService(N_SHARDS, config, token=6)
    resident_over_time: list[int] = []
    deadline = time.monotonic() + soak_seconds()
    round_index = 0
    try:
        while time.monotonic() < deadline:
            for job_index, (job, period) in enumerate(periods.items()):
                payload_format = ("msgpack", "json")[job_index % 2]
                service.feed_bytes(
                    encode_frame(
                        make_flush(rng, round_index, period),
                        job=job,
                        payload_format=payload_format,
                        token=6,
                    )
                )
            service.pump()
            stats = service.stats()
            resident_over_time.append(int(stats["resident_samples"]))
            round_index += 1
        service.drain()
        final = service.stats()
        assert final["jobs"] == N_JOBS
        assert final["detections"] > 0
        assert final["dead_shards"] == 0
    finally:
        service.close()

    assert round_index >= 8, "the soak must complete a meaningful number of rounds"
    # Hard cap: aggregate residency can never exceed N_JOBS * max_samples.
    assert max(resident_over_time) <= N_JOBS * MAX_SAMPLES
    # No growth: once warmed up (first half), the high-water mark of the
    # second half must not exceed the first half's by more than 10 % — the
    # adaptive windows and eviction keep per-session memory O(window) even
    # as total ingested data grows without bound.
    half = len(resident_over_time) // 2
    warm = max(resident_over_time[:half])
    late = max(resident_over_time[half:])
    assert late <= 1.10 * warm, (
        f"resident samples grew from {warm} (first half) to {late} (second half)"
    )
