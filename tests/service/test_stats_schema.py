"""Pins the merged stats-tree key schema across topologies.

``PredictionService.stats()`` and ``ShardedService.stats()`` are scraped by
dashboards and the gateway's ``/status`` endpoint, so their key sets are a
public contract: a sharded deployment must expose exactly the single-process
keys plus a pinned set of topology counters — at any shard count, and
unchanged by a live reshard.  A new key is fine (add it to the pin below); a
key that appears only at some shard counts, or vanishes during a reshard, is
a dashboard-breaking bug.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.benchmark import synthetic_flush_streams
from repro.core import FtioConfig
from repro.obs import Histogram
from repro.service import (
    PredictionService,
    ServiceConfig,
    SessionConfig,
    ShardedService,
)
from repro.trace.framing import encode_frame

#: The single-process stats schema (the merged tree sums these over shards).
SERVICE_KEYS = frozenset(
    {
        "jobs",
        "frames",
        "flushes",
        "requests",
        "detections",
        "failures",
        "deferred",
        "pending_evaluations",
        "published",
        "evicted_samples",
        "resident_samples",
        "bytes_copied_per_frame",
        "p50_detection_latency_seconds",
        "p99_detection_latency_seconds",
    }
)

#: Keys only a sharded deployment reports (topology and migration counters).
SHARDED_ONLY_KEYS = frozenset(
    {
        "shards",
        "dead_shards",
        "revived_shards",
        "reshards",
        "sessions_moved",
        "resharding_in_progress",
        "double_routed_frames",
    }
)


@pytest.fixture(scope="module")
def config():
    return ServiceConfig(
        session=SessionConfig(
            config=FtioConfig(
                sampling_frequency=10.0,
                use_autocorrelation=False,
                compute_characterization=False,
            )
        )
    )


@pytest.fixture(scope="module")
def streams():
    return synthetic_flush_streams(4, flushes_per_job=2, requests_per_flush=8, seed=11)


def feed_and_pump(service, streams) -> None:
    for round_index in range(2):
        for job, flushes in streams.items():
            if round_index < len(flushes):
                service.feed_bytes(encode_frame(flushes[round_index], job=job))
        if isinstance(service, PredictionService):
            service.pump(wait_for_batch=True)
        else:
            service.pump()
    service.drain()


def test_single_process_stats_schema_is_pinned(config, streams):
    service = PredictionService(config)
    try:
        assert set(service.stats()) == SERVICE_KEYS  # idle schema
        feed_and_pump(service, streams)
        assert set(service.stats()) == SERVICE_KEYS  # active schema
    finally:
        service.close()


@pytest.mark.parametrize("n_shards", [1, 4])
def test_sharded_stats_schema_matches_single_plus_topology(config, streams, n_shards):
    service = ShardedService(n_shards, config)
    try:
        assert set(service.stats()) == SERVICE_KEYS | SHARDED_ONLY_KEYS
        feed_and_pump(service, streams)
        assert set(service.stats()) == SERVICE_KEYS | SHARDED_ONLY_KEYS
    finally:
        service.close()


def test_stats_schema_survives_reshard(config, streams):
    service = ShardedService(2, config)
    try:
        feed_and_pump(service, streams)
        before = set(service.stats())
        service.reshard(4)
        after_grow = set(service.stats())
        service.reshard(1)
        after_shrink = set(service.stats())
        assert before == after_grow == after_shrink == SERVICE_KEYS | SHARDED_ONLY_KEYS
    finally:
        service.close()


# --------------------------------------------------------------------- #
# cross-shard percentile merge (the unbiased histogram path)
# --------------------------------------------------------------------- #
def _shard_reply(latencies, hist: Histogram | None) -> dict:
    """The slice of a shard Stats reply ``_percentile`` consumes."""
    return {
        "latencies": list(latencies),
        "detect_hist": None if hist is None else hist.to_dict(),
    }


def _hist_of(values) -> Histogram:
    hist = Histogram()  # the default latency buckets the dispatcher uses
    for value in values:
        hist.observe(value)
    return hist


class TestPercentileMerge:
    """Pins ``ShardedService._percentile``: histogram merge, not window pooling.

    The recent-latency windows cap each shard at ``latency_window`` samples
    regardless of volume, so pooling them over-weights low-volume shards.
    With metrics on, every shard ships its full detection histogram and the
    merge must be volume-weighted.
    """

    def test_merges_histograms_volume_weighted(self):
        # Shard A: 900 fast detections; shard B: 100 slow ones.  The merged
        # p50 must land in a fast bucket (A dominates by volume) even though
        # per-shard window pooling with equal-length windows would not.
        fast, slow = 0.001, 0.9
        stats_list = [
            _shard_reply([fast] * 10, _hist_of([fast] * 900)),
            _shard_reply([slow] * 10, _hist_of([slow] * 100)),
        ]
        merged = _hist_of([fast] * 900).merge(_hist_of([slow] * 100))
        p50 = ShardedService._percentile(stats_list, 50.0)
        assert p50 == pytest.approx(merged.quantile(0.5))
        assert p50 is not None and p50 < 0.01
        p99 = ShardedService._percentile(stats_list, 99.0)
        assert p99 == pytest.approx(merged.quantile(0.99))

    def test_empty_merged_histogram_is_none(self):
        stats_list = [
            _shard_reply([], _hist_of([])),
            _shard_reply([], _hist_of([])),
        ]
        assert ShardedService._percentile(stats_list, 99.0) is None

    def test_falls_back_to_pooled_windows_without_histograms(self):
        # Metrics off on any shard -> the pre-histogram pooled-window path.
        stats_list = [
            _shard_reply([0.1, 0.2], None),
            _shard_reply([0.3, 0.4], _hist_of([0.3, 0.4])),
        ]
        expected = float(np.percentile(np.asarray([0.1, 0.2, 0.3, 0.4]), 50.0))
        assert ShardedService._percentile(stats_list, 50.0) == pytest.approx(expected)
        assert ShardedService._percentile([], 99.0) is None

    def test_live_sharded_p99_comes_from_histograms(self, config, streams):
        service = ShardedService(2, config)
        try:
            feed_and_pump(service, streams)
            stats_list = service._stats_responses()
            assert all(reply.get("detect_hist") is not None for reply in stats_list)
            merged = Histogram.from_dict(stats_list[0]["detect_hist"])
            for reply in stats_list[1:]:
                merged = merged.merge(Histogram.from_dict(reply["detect_hist"]))
            assert merged.count > 0
            expected = float(merged.quantile(0.99))
            assert service.stats()["p99_detection_latency_seconds"] == pytest.approx(expected)
        finally:
            service.close()
