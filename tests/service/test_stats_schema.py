"""Pins the merged stats-tree key schema across topologies.

``PredictionService.stats()`` and ``ShardedService.stats()`` are scraped by
dashboards and the gateway's ``/status`` endpoint, so their key sets are a
public contract: a sharded deployment must expose exactly the single-process
keys plus a pinned set of topology counters — at any shard count, and
unchanged by a live reshard.  A new key is fine (add it to the pin below); a
key that appears only at some shard counts, or vanishes during a reshard, is
a dashboard-breaking bug.
"""

from __future__ import annotations

import pytest

from repro.analysis.benchmark import synthetic_flush_streams
from repro.core import FtioConfig
from repro.service import (
    PredictionService,
    ServiceConfig,
    SessionConfig,
    ShardedService,
)
from repro.trace.framing import encode_frame

#: The single-process stats schema (the merged tree sums these over shards).
SERVICE_KEYS = frozenset(
    {
        "jobs",
        "frames",
        "flushes",
        "requests",
        "detections",
        "failures",
        "deferred",
        "published",
        "evicted_samples",
        "resident_samples",
        "bytes_copied_per_frame",
        "p50_detection_latency_seconds",
        "p99_detection_latency_seconds",
    }
)

#: Keys only a sharded deployment reports (topology and migration counters).
SHARDED_ONLY_KEYS = frozenset(
    {
        "shards",
        "dead_shards",
        "revived_shards",
        "reshards",
        "sessions_moved",
        "resharding_in_progress",
    }
)


@pytest.fixture(scope="module")
def config():
    return ServiceConfig(
        session=SessionConfig(
            config=FtioConfig(
                sampling_frequency=10.0,
                use_autocorrelation=False,
                compute_characterization=False,
            )
        )
    )


@pytest.fixture(scope="module")
def streams():
    return synthetic_flush_streams(4, flushes_per_job=2, requests_per_flush=8, seed=11)


def feed_and_pump(service, streams) -> None:
    for round_index in range(2):
        for job, flushes in streams.items():
            if round_index < len(flushes):
                service.feed_bytes(encode_frame(flushes[round_index], job=job))
        if isinstance(service, PredictionService):
            service.pump(wait_for_batch=True)
        else:
            service.pump()
    service.drain()


def test_single_process_stats_schema_is_pinned(config, streams):
    service = PredictionService(config)
    try:
        assert set(service.stats()) == SERVICE_KEYS  # idle schema
        feed_and_pump(service, streams)
        assert set(service.stats()) == SERVICE_KEYS  # active schema
    finally:
        service.close()


@pytest.mark.parametrize("n_shards", [1, 4])
def test_sharded_stats_schema_matches_single_plus_topology(config, streams, n_shards):
    service = ShardedService(n_shards, config)
    try:
        assert set(service.stats()) == SERVICE_KEYS | SHARDED_ONLY_KEYS
        feed_and_pump(service, streams)
        assert set(service.stats()) == SERVICE_KEYS | SHARDED_ONLY_KEYS
    finally:
        service.close()


def test_stats_schema_survives_reshard(config, streams):
    service = ShardedService(2, config)
    try:
        feed_and_pump(service, streams)
        before = set(service.stats())
        service.reshard(4)
        after_grow = set(service.stats())
        service.reshard(1)
        after_shrink = set(service.stats())
        assert before == after_grow == after_shrink == SERVICE_KEYS | SHARDED_ONLY_KEYS
    finally:
        service.close()
