"""Supervision features: snapshot-driven spool compaction and shard auto-revive.

Both features are pure composition of proven pieces — ``compact_spool`` +
reader rebasing, and ``revive_shard`` + snapshot/spool replay — so the tests
assert the same end state as the manual paths: predictions bit-identical to a
run without compaction / without a crash.
"""

from __future__ import annotations

import pytest

from repro.analysis.benchmark import synthetic_flush_streams
from repro.core import FtioConfig
from repro.exceptions import ShardCrashedError
from repro.service import (
    PredictionService,
    ServiceConfig,
    SessionConfig,
    ShardedService,
)
from repro.trace.framing import FrameWriter


@pytest.fixture(scope="module")
def session_config():
    return SessionConfig(
        config=FtioConfig(
            sampling_frequency=10.0,
            use_autocorrelation=False,
            compute_characterization=False,
        )
    )


def sessions_by_job(state: dict) -> dict[str, dict]:
    return {session["job"]: session for session in state["sessions"]}


class TestAutoCompaction:
    def _run(self, tmp_path, session_config, *, auto_compact: bool) -> dict:
        streams = synthetic_flush_streams(4, flushes_per_job=8, seed=3)
        n_rounds = max(len(flushes) for flushes in streams.values())
        spool = tmp_path / f"spool-{auto_compact}.fts"
        writer = FrameWriter(spool)
        service = PredictionService(
            ServiceConfig(session=session_config, auto_compact=auto_compact)
        )
        reader = service.tail_file(spool)
        compactions = []
        for round_index in range(n_rounds):
            for job, flushes in streams.items():
                writer.write(flushes[round_index], job=job)
            reader.poll()
            service.pump()
            if round_index == n_rounds // 2:
                size_before = spool.stat().st_size
                service.snapshot_state()
                compactions.append((size_before, spool.stat().st_size))
        service.drain()
        state = service.snapshot_state()
        stats = service.stats()
        service.close()
        return {
            "state": state,
            "stats": stats,
            "compactions": compactions,
            "spool_size": spool.stat().st_size,
        }

    def test_snapshot_compacts_spool_and_changes_nothing_else(self, tmp_path, session_config):
        compacted = self._run(tmp_path, session_config, auto_compact=True)
        control = self._run(tmp_path, session_config, auto_compact=False)

        # The mid-run snapshot dropped the fully consumed prefix...
        (before, after), = compacted["compactions"]
        assert before > 0 and after == 0, "a fully consumed spool compacts to empty"
        # ... the final snapshot compacted again, so the spool holds only the
        # bytes appended after it (nothing, since we snapshot post-drain) ...
        assert compacted["spool_size"] == 0
        assert control["spool_size"] > 0
        # ... and every prediction and counter is untouched by compaction.
        # (The latency percentiles are wall-clock measurements — identical in
        # shape, never in value, across two runs — so compare around them.)
        def counters(stats: dict) -> dict:
            return {k: v for k, v in stats.items() if not k.endswith("_seconds")}

        assert counters(compacted["stats"]) == counters(control["stats"])
        assert sessions_by_job(compacted["state"]) == sessions_by_job(control["state"])
        assert compacted["state"]["publisher"] == control["state"]["publisher"]

    def test_compaction_keeps_unconsumed_tail(self, tmp_path, session_config):
        streams = synthetic_flush_streams(2, flushes_per_job=4, seed=5)
        spool = tmp_path / "tail.fts"
        writer = FrameWriter(spool)
        service = PredictionService(
            ServiceConfig(session=session_config, auto_compact=True)
        )
        reader = service.tail_file(spool)
        for job, flushes in streams.items():
            writer.write(flushes[0], job=job)
        reader.poll()
        service.pump()
        # Frames appended but not yet polled must survive the compaction.
        pending = sum(
            writer.write(flushes[1], job=job) for job, flushes in streams.items()
        )
        service.snapshot_state()
        assert spool.stat().st_size == pending
        assert reader.poll(), "the retained tail is still ingestible"
        service.pump()
        assert service.stats()["flushes"] == 4
        service.close()


class TestAutoRevive:
    def _config(self, session_config, **overrides) -> ServiceConfig:
        return ServiceConfig(session=session_config, max_workers=2, **overrides)

    def _stream(self, service, writer, tail, streams, rounds) -> None:
        for round_index in rounds:
            for job, flushes in streams.items():
                if round_index < len(flushes):
                    writer.write(flushes[round_index], job=job)
            tail.poll()
            service.pump()

    def test_pump_revives_crashed_shard_transparently(self, tmp_path, session_config):
        streams = synthetic_flush_streams(8, flushes_per_job=9, seed=11)
        n_rounds = max(len(flushes) for flushes in streams.values())
        third = n_rounds // 3

        def run(*, kill: bool) -> dict:
            spool = tmp_path / f"spool-kill-{kill}.fts"
            writer = FrameWriter(spool)
            service = ShardedService(
                2, self._config(session_config, auto_revive=True, revive_budget=2)
            )
            try:
                tail = service.tail_file(spool)
                self._stream(service, writer, tail, streams, range(third))
                service.snapshot_state()  # the auto-revive recovery point
                self._stream(service, writer, tail, streams, range(third, 2 * third))
                if kill:
                    victim = service.shard_for(next(iter(streams)))
                    service.kill_shard(victim)
                    assert service.dead_shards() == (victim,)
                # The crash surfaces inside pump() and is healed in place:
                # no exception reaches the streaming loop.
                self._stream(service, writer, tail, streams, range(2 * third, n_rounds))
                service.drain()
                stats = service.stats()
                assert service.dead_shards() == ()
                return {
                    "state": service.snapshot_state(),
                    "periods": {
                        job: service.publisher.latest_period(job) for job in streams
                    },
                    "revives": service.auto_revives,
                    "stats": stats,
                }
            finally:
                service.close()

        crashed = run(kill=True)
        clean = run(kill=False)

        assert crashed["revives"] == 1
        assert crashed["stats"]["revived_shards"] == 1
        assert clean["revives"] == 0
        assert crashed["periods"] == clean["periods"]
        ours, theirs = sessions_by_job(crashed["state"]), sessions_by_job(clean["state"])
        for job in streams:
            assert ours[job]["predictor"] == theirs[job]["predictor"], job
            assert ours[job]["buffer"] == theirs[job]["buffer"], job

    def test_auto_revive_respects_budget(self, tmp_path, session_config):
        streams = synthetic_flush_streams(4, flushes_per_job=4, seed=2)
        spool = tmp_path / "budget.fts"
        writer = FrameWriter(spool)
        service = ShardedService(
            2, self._config(session_config, auto_revive=True, revive_budget=1)
        )
        try:
            tail = service.tail_file(spool)
            self._stream(service, writer, tail, streams, range(1))
            victim = service.shard_for(next(iter(streams)))

            service.kill_shard(victim)
            service.pump()  # first crash: healed within budget
            assert service.auto_revives == 1
            assert service.dead_shards() == ()

            service.kill_shard(victim)
            # Budget exhausted: the crash surfaces loudly instead of the
            # dead shard being silently skipped.
            with pytest.raises(ShardCrashedError, match="budget"):
                service.pump()
            assert service.auto_revives == 1
            assert service.dead_shards() == (victim,)
            with pytest.raises(ShardCrashedError):  # traffic to it fails too
                self._stream(service, writer, tail, streams, range(1, 2))
        finally:
            service.close()

    def test_replay_stops_at_parent_consumed_position(self, tmp_path, session_config):
        """Frames appended after the parent's last poll must not be ingested
        twice (once by the revival replay, again by the next poll)."""
        streams = synthetic_flush_streams(6, flushes_per_job=6, seed=13)

        def run(*, kill: bool) -> dict:
            spool = tmp_path / f"pending-{kill}.fts"
            writer = FrameWriter(spool)
            service = ShardedService(
                2, self._config(session_config, auto_revive=True, revive_budget=2)
            )
            try:
                tail = service.tail_file(spool)
                self._stream(service, writer, tail, streams, range(3))
                service.snapshot_state()
                self._stream(service, writer, tail, streams, range(3, 4))
                # A concurrent writer races ahead: round 4 is already in the
                # spool but the router has not polled it yet.
                for job, flushes in streams.items():
                    writer.write(flushes[4], job=job)
                if kill:
                    service.kill_shard(service.shard_for(next(iter(streams))))
                    service.pump()  # auto-revive; replay must NOT eat round 4
                # Round 4 now arrives through the normal poll path.
                tail.poll()
                service.pump()
                self._stream(service, writer, tail, streams, range(5, 6))
                service.drain()
                return {
                    "state": service.snapshot_state(),
                    "revives": service.auto_revives,
                }
            finally:
                service.close()

        crashed = run(kill=True)
        clean = run(kill=False)
        assert crashed["revives"] == 1
        ours, theirs = sessions_by_job(crashed["state"]), sessions_by_job(clean["state"])
        for job in streams:
            assert ours[job]["ingested_flushes"] == theirs[job]["ingested_flushes"], job
            assert ours[job]["predictor"] == theirs[job]["predictor"], job
            assert ours[job]["buffer"] == theirs[job]["buffer"], job

    def test_revival_replays_every_tailed_spool(self, tmp_path, session_config):
        """Post-snapshot frames from *all* tailed spools must be replayed."""
        streams = synthetic_flush_streams(6, flushes_per_job=6, seed=17)
        jobs = list(streams)

        def run(*, kill: bool) -> dict:
            spools = [tmp_path / f"multi-{kill}-{i}.fts" for i in range(2)]
            writers = [FrameWriter(s) for s in spools]
            service = ShardedService(
                2, self._config(session_config, auto_revive=True, revive_budget=2)
            )
            try:
                tails = [service.tail_file(s) for s in spools]

                def stream(rounds) -> None:
                    for round_index in rounds:
                        # Half the jobs flush into each spool.
                        for j, job in enumerate(jobs):
                            writers[j % 2].write(streams[job][round_index], job=job)
                        for tail in tails:
                            tail.poll()
                        service.pump()

                stream(range(2))
                service.snapshot_state()
                stream(range(2, 4))
                if kill:
                    service.kill_shard(service.shard_for(jobs[0]))
                    service.pump()
                stream(range(4, 6))
                service.drain()
                return {
                    "state": service.snapshot_state(),
                    "revives": service.auto_revives,
                }
            finally:
                service.close()

        crashed = run(kill=True)
        clean = run(kill=False)
        assert crashed["revives"] == 1
        ours, theirs = sessions_by_job(crashed["state"]), sessions_by_job(clean["state"])
        for job in jobs:
            assert ours[job]["predictor"] == theirs[job]["predictor"], job
            assert ours[job]["buffer"] == theirs[job]["buffer"], job

    def test_all_crashed_shards_revive_in_one_pump(self, tmp_path, session_config):
        streams = synthetic_flush_streams(8, flushes_per_job=4, seed=19)
        spool = tmp_path / "double.fts"
        writer = FrameWriter(spool)
        service = ShardedService(
            3, self._config(session_config, auto_revive=True, revive_budget=3)
        )
        try:
            tail = service.tail_file(spool)
            self._stream(service, writer, tail, streams, range(2))
            service.snapshot_state()
            service.kill_shard(0)
            service.kill_shard(1)
            assert set(service.dead_shards()) == {0, 1}
            service.pump()  # both crashes healed, none silently skipped
            assert service.dead_shards() == ()
            assert service.auto_revives == 2
            self._stream(service, writer, tail, streams, range(2, 4))
            service.drain()
            assert all(
                service.publisher.latest_period(job) is not None for job in streams
            )
        finally:
            service.close()

    def test_crashes_surface_without_auto_revive(self, session_config):
        streams = synthetic_flush_streams(4, flushes_per_job=2, seed=2)
        service = ShardedService(2, self._config(session_config))
        try:
            victim = service.shard_for(next(iter(streams)))
            service.kill_shard(victim)
            with pytest.raises(ShardCrashedError):
                for job, flushes in streams.items():
                    service.ingest_flush(job, flushes[0])
            assert service.auto_revives == 0
            assert victim in service.dead_shards()
        finally:
            service.close()
