"""Property tests of the weighted consistent-hash ring.

``HashRing(n, weights=[...])`` gives heterogeneous shards proportional
keyspace by scaling each shard's virtual-node count.  Three contracts:

* **share ∝ weight** — each shard's exact keyspace arc fraction
  (:meth:`~repro.service.sharding.HashRing.arc_shares`, no sampling noise)
  tracks its weight share, within the variance a finite virtual-node count
  allows;
* **minimal movement** — changing only one shard's weight moves keys only
  into (grown) or out of (shrunk) that shard, never between bystanders,
  because weights only append/remove tail replica points;
* **hash-seed determinism** — weighted routing is identical under any
  ``PYTHONHASHSEED`` (the ring hashes with blake2b, never ``hash()``).
"""

from __future__ import annotations

import json
import os
import subprocess
import sys

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.service import HashRing
from test_resharding import service_config  # noqa: F401  (fixture, used by name)

JOBS = [f"job-{i:04d}" for i in range(400)]

weights_list_st = st.lists(
    st.floats(min_value=0.25, max_value=4.0, allow_nan=False), min_size=1, max_size=6
)


class TestWeightedConstruction:
    def test_uniform_ring_is_the_weightless_ring(self):
        # weights=None and equal weights route identically (same point set).
        plain = HashRing(4, replicas=32)
        uniform = HashRing(4, replicas=32, weights=[1.0, 1.0, 1.0, 1.0])
        assert plain.weights is None and uniform.weights == (1.0, 1.0, 1.0, 1.0)
        for job in JOBS:
            assert plain.shard_for(job) == uniform.shard_for(job)

    def test_replica_counts_scale_with_weight(self):
        ring = HashRing(4, replicas=64, weights=[1.0, 2.0, 0.5, 4.0])
        assert ring.replica_counts == (64, 128, 32, 256)

    def test_tiny_weight_keeps_at_least_one_point(self):
        ring = HashRing(2, replicas=8, weights=[1.0, 0.001])
        assert ring.replica_counts == (8, 1)
        assert {ring.shard_for(job) for job in JOBS} == {0, 1}

    @pytest.mark.parametrize(
        "weights,match",
        [
            ([1.0], "one entry per shard"),
            ([1.0, 0.0, 1.0], "> 0"),
            ([1.0, -2.0, 1.0], "> 0"),
        ],
    )
    def test_invalid_weights_rejected(self, weights, match):
        with pytest.raises(ValueError, match=match):
            HashRing(3, weights=weights)

    @given(weights=weights_list_st)
    @settings(max_examples=50, deadline=None)
    def test_routing_total_and_deterministic(self, weights):
        ring = HashRing(len(weights), replicas=16, weights=weights)
        again = HashRing(len(weights), replicas=16, weights=weights)
        for job in JOBS[:50]:
            owner = ring.shard_for(job)
            assert 0 <= owner < len(weights)
            assert owner == again.shard_for(job)


class TestArcShares:
    def test_shares_sum_to_one(self):
        ring = HashRing(5, replicas=64, weights=[1.0, 2.0, 3.0, 0.5, 1.5])
        assert sum(ring.arc_shares()) == pytest.approx(1.0)

    def test_share_tracks_weight(self):
        # 128 points per unit weight keeps the per-shard arc variance small
        # enough for a loose relative tolerance — this is a statistical
        # property of the hash, pinned deterministically (blake2b, no seed).
        weights = [1.0, 2.0, 3.0, 4.0]
        ring = HashRing(4, replicas=128, weights=weights)
        total = sum(weights)
        for shard, share in enumerate(ring.arc_shares()):
            expected = weights[shard] / total
            assert share == pytest.approx(expected, rel=0.35), (shard, share, expected)

    def test_heavier_shard_owns_more_jobs(self):
        ring = HashRing(2, replicas=96, weights=[1.0, 3.0])
        owned = sum(1 for job in JOBS if ring.shard_for(job) == 1)
        assert owned > len(JOBS) / 2


class TestMinimalMovementOnWeightChange:
    @given(
        weights=st.lists(
            st.floats(min_value=0.5, max_value=2.0, allow_nan=False),
            min_size=2,
            max_size=5,
        ),
        data=st.data(),
    )
    @settings(max_examples=40, deadline=None)
    def test_growing_one_weight_only_pulls_keys_into_it(self, weights, data):
        grown = data.draw(st.integers(0, len(weights) - 1))
        before = HashRing(len(weights), replicas=16, weights=weights)
        heavier = list(weights)
        heavier[grown] = heavier[grown] * 2.0 + 1.0
        after = HashRing(len(weights), replicas=16, weights=heavier)
        for job in JOBS[:120]:
            old, new = before.shard_for(job), after.shard_for(job)
            if old != new:
                # Every moved key moves *to* the grown shard; bystanders
                # never exchange keys among themselves.
                assert new == grown, (job, old, new, grown)

    def test_shrinking_one_weight_only_pushes_keys_out_of_it(self):
        before = HashRing(3, replicas=32, weights=[2.0, 2.0, 2.0])
        after = HashRing(3, replicas=32, weights=[2.0, 0.5, 2.0])
        moved = 0
        for job in JOBS:
            old, new = before.shard_for(job), after.shard_for(job)
            if old != new:
                assert old == 1, (job, old, new)
                moved += 1
        assert 0 < moved < len(JOBS)


# --------------------------------------------------------------------- #
# end to end: a live weighted reshard routes like the weighted ring
# --------------------------------------------------------------------- #
class TestWeightedReshard:
    def test_live_reshard_onto_weighted_ring_bit_identical(self, service_config):
        from repro.analysis.benchmark import synthetic_flush_streams
        from repro.service import ShardedService
        from test_resharding import (
            assert_bit_identical,
            frame_for,
            pump_service,
            run_reference,
            submit_round,
        )

        streams = synthetic_flush_streams(
            16, flushes_per_job=3, requests_per_flush=8, seed=21
        )
        weights = [1.0, 3.0, 1.0]
        sharded = ShardedService(2, service_config)
        try:
            submit_round(sharded, streams, 0)
            pump_service(sharded)
            summary = sharded.reshard(3, weights=weights)
            assert summary["to_shards"] == 3
            assert sharded.ring.weights == tuple(weights)
            expected_ring = HashRing(3, weights=weights)
            for job in streams:
                assert sharded.shard_for(job) == expected_ring.shard_for(job)
            # A same-count, same-weights resize is a no-op; same count with
            # different weights is a real (weight-rebalancing) reshard.
            assert sharded.reshard(3, weights=weights)["moved_sessions"] == 0
            rebalance = sharded.reshard(3, weights=[1.0, 1.0, 1.0])
            assert sharded.ring.weights == (1.0, 1.0, 1.0)
            moved = set(rebalance["moved_jobs"])
            uniform = HashRing(3)
            assert moved == {
                job
                for job in streams
                if expected_ring.shard_for(job) != uniform.shard_for(job)
            }
            for round_index in range(1, 3):
                submit_round(sharded, streams, round_index)
                pump_service(sharded)
            sharded.drain()
            elastic = {
                "state": sharded.snapshot_state(),
                "periods": {
                    job: sharded.publisher.latest_period(job) for job in streams
                },
            }
        finally:
            sharded.close()
        reference = run_reference(streams, service_config, [("submit",), ("pump",)])
        assert_bit_identical(elastic, reference, streams)


# --------------------------------------------------------------------- #
# hash-seed determinism (subprocess matrix, as for the unweighted ring)
# --------------------------------------------------------------------- #
_WEIGHTED_RING_SCRIPT = """
import json
from repro.service import HashRing

jobs = [f"job-{i:04d}" for i in range(300)]
rings = {
    "uniform": HashRing(4, replicas=32),
    "weighted": HashRing(4, replicas=32, weights=[1.0, 2.0, 0.5, 4.0]),
    "grown": HashRing(4, replicas=32, weights=[1.0, 2.0, 0.5, 8.0]),
}
out = {
    "owners": {name: [ring.shard_for(j) for j in jobs] for name, ring in rings.items()},
    "shares": {name: list(ring.arc_shares()) for name, ring in rings.items()},
    "moves": sorted(
        j for j in jobs
        if rings["weighted"].shard_for(j) != rings["grown"].shard_for(j)
    ),
}
print(json.dumps(out, sort_keys=True))
"""


class TestHashSeedDeterminism:
    def test_weighted_routing_identical_across_hash_seeds(self):
        results = []
        for seed in ("0", "1", "314159"):
            env = dict(os.environ)
            env["PYTHONHASHSEED"] = seed
            env["PYTHONPATH"] = os.pathsep.join(
                p for p in ("src", env.get("PYTHONPATH", "")) if p
            )
            proc = subprocess.run(
                [sys.executable, "-c", _WEIGHTED_RING_SCRIPT],
                capture_output=True,
                text=True,
                env=env,
                cwd=os.path.dirname(os.path.dirname(os.path.dirname(__file__))),
                check=True,
                timeout=60,
            )
            results.append(json.loads(proc.stdout))
        assert results[0] == results[1] == results[2]
        # ... and the weight-only change still moved keys only into shard 3.
        weighted = HashRing(4, replicas=32, weights=[1.0, 2.0, 0.5, 4.0])
        grown = HashRing(4, replicas=32, weights=[1.0, 2.0, 0.5, 8.0])
        for job in results[0]["moves"]:
            assert weighted.shard_for(job) != 3
            assert grown.shard_for(job) == 3
