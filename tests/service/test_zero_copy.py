"""The ingest path must move each frame with at most one copy per hop.

Three layers are pinned here:

* the frame buffer (:mod:`repro.trace.framing`): a frame that lies within
  one fed chunk is emitted as a borrowed ``memoryview`` — zero copies — and
  only chunk-spanning frames are join-copied, so ``bytes_copied_per_frame``
  stays below one frame's worth of bytes under any chunking;
* the shared-memory ring (:mod:`repro.service.shm_ring`): bytes written by
  the router come back to the reader as borrowed views of the mapped
  segment, through wrap-around, flow control and shutdown drain, in-process
  and across a real ``fork``;
* the assembled service: a sharded deployment on the ring data plane
  reports ``bytes_copied_per_frame == 0`` for whole-frame routing while
  producing predictions identical to the socket data plane.
"""

from __future__ import annotations

import os
import socket
import threading

import pytest

from repro.service import ServiceConfig, SessionConfig, ShardedService
from repro.service.broker import FlushBroker
from repro.service.shm_ring import ShmRingReader, ShmRingWriter
from repro.trace.framing import _HEADER, FrameDecoder, FrameSplitter, encode_frame
from repro.trace.jsonl import FlushRecord
from repro.trace.record import IORequest


def make_flush(index: int) -> FlushRecord:
    start = index * 8.0
    requests = tuple(
        IORequest(rank=r, start=start + r * 0.05, end=start + 0.5, nbytes=1024)
        for r in range(4)
    )
    return FlushRecord(flush_index=index, timestamp=start + 1.0, requests=requests)


def frame_stream(n: int = 12) -> tuple[bytes, int]:
    data = b""
    for i in range(n):
        data += encode_frame(make_flush(i), job=f"job-{i % 3}")
    return data, n


# --------------------------------------------------------------------- #
# frame buffer copy accounting
# --------------------------------------------------------------------- #
class TestFramingZeroCopy:
    def test_whole_chunk_feed_is_zero_copy(self):
        data, n = frame_stream()
        splitter = FrameSplitter()
        splitter.feed(data)
        frames = list(splitter.raw_frames())
        assert len(frames) == n
        assert all(isinstance(f.data, memoryview) for f in frames)
        assert splitter.bytes_copied == 0
        assert splitter.frames_emitted == n
        assert splitter.bytes_copied_per_frame == 0.0

    def test_decoder_is_zero_copy_on_whole_chunks(self):
        data, n = frame_stream()
        decoder = FrameDecoder()
        decoder.feed(data)
        assert len(decoder.drain()) == n
        assert decoder.bytes_copied == 0
        assert decoder.bytes_copied_per_frame == 0.0

    @pytest.mark.parametrize("chunk", [1, 7, 64, 1000])
    def test_any_chunking_costs_at_most_one_copy_per_frame(self, chunk):
        data, n = frame_stream()
        splitter = FrameSplitter()
        frames = []
        for offset in range(0, len(data), chunk):
            splitter.feed(data[offset : offset + chunk])
            frames.extend(splitter.raw_frames())
        assert len(frames) == n
        assert splitter.bytes_emitted == len(data)
        # ≤ 1 copy per frame per hop: each frame pays at most one join (its
        # own bytes) plus one header coalesce, never a copy per poll — the
        # bound is O(frame size), independent of how finely the stream
        # dribbles in.
        assert splitter.bytes_copied <= splitter.bytes_emitted + n * _HEADER.size
        assert splitter.bytes_copied_per_frame <= len(data) / n + _HEADER.size

    def test_detach_materializes_borrowed_tail(self):
        data, n = frame_stream(4)
        split = len(data) - 11
        splitter = FrameSplitter()
        splitter.feed(memoryview(data[:split]))
        consumed = list(splitter.raw_frames())
        # Simulate the ring reclaiming the borrowed chunk: detach first.
        splitter.detach()
        splitter.feed(memoryview(data[split:]))
        consumed.extend(splitter.raw_frames())
        assert len(consumed) == n
        assert [f.job for f in consumed] == [f"job-{i % 3}" for i in range(n)]


# --------------------------------------------------------------------- #
# shared-memory ring
# --------------------------------------------------------------------- #
def drain_ring(reader: ShmRingReader, out: bytearray) -> None:
    while not reader.eof:
        reader.pump_doorbell()
        for view in reader.views():
            out.extend(view)
            view.release()
        reader.ack()


class TestShmRing:
    def test_roundtrip_with_wrap_and_flow_control(self):
        """A payload many times the capacity forces wrap-around and blocking."""
        payload = bytes(range(256)) * 41  # 10496 bytes through a 64-byte ring
        writer = ShmRingWriter(capacity=64)
        a, b = socket.socketpair()
        reader = ShmRingReader(writer.handle, b)
        received = bytearray()
        consumer = threading.Thread(target=drain_ring, args=(reader, received))
        consumer.start()
        try:
            writer.bind(a)
            assert writer.write(payload) == len(payload)
        finally:
            a.close()
            consumer.join(timeout=30)
        assert not consumer.is_alive()
        assert bytes(received) == payload
        reader.close()
        b.close()
        writer.close()

    def test_reader_views_borrow_ring_memory(self):
        writer = ShmRingWriter(capacity=1024)
        a, b = socket.socketpair()
        reader = ShmRingReader(writer.handle, b)
        writer.bind(a)
        writer.write(b"abcdef")
        reader.pump_doorbell()
        views = reader.views()
        assert len(views) == 1 and bytes(views[0]) == b"abcdef"
        assert isinstance(views[0], memoryview)
        views[0].release()
        reader.ack()
        reader.close()
        a.close()
        b.close()
        writer.close()

    def test_writer_detects_dead_reader(self):
        writer = ShmRingWriter(capacity=16)
        a, b = socket.socketpair()
        writer.bind(a)
        b.close()  # the "shard" is gone
        with pytest.raises((BrokenPipeError, ConnectionResetError, OSError)):
            # More than one ring's worth: the writer must wait for acks that
            # can never come, and observe the closed doorbell instead.
            writer.write(b"x" * 64)
        a.close()
        writer.close()

    def test_cross_process_drain(self, tmp_path):
        """A forked consumer drains everything announced before writer EOF."""
        import multiprocessing

        payload = b"hello-shm-ring" * 5000  # 70000 bytes via a 4096-byte ring

        def child(handle, doorbell, inherited_parent_end):
            # fork duplicates the parent's doorbell end into this process;
            # drop it so the parent's close is visible as EOF.
            inherited_parent_end.close()
            reader = ShmRingReader(handle, doorbell)
            received = bytearray()
            drain_ring(reader, received)
            reader.close()
            os._exit(0 if bytes(received) == payload else 1)

        ctx = multiprocessing.get_context("fork")
        writer = ShmRingWriter(capacity=4096)
        a, b = socket.socketpair()
        process = ctx.Process(target=child, args=(writer.handle, b, a))
        process.start()
        b.close()
        writer.bind(a)
        assert writer.write(payload) == len(payload)
        a.close()
        process.join(timeout=30)
        assert process.exitcode == 0
        writer.close()


# --------------------------------------------------------------------- #
# broker borrowed-feed + end-to-end copy accounting
# --------------------------------------------------------------------- #
class TestIngestCopyAccounting:
    def test_broker_feed_borrowed_decodes_in_place(self):
        data, n = frame_stream()
        broker = FlushBroker(session_config=SessionConfig())
        buffer = bytearray(data)  # mutable: proves the broker let go in time
        assert broker.feed_borrowed(memoryview(buffer)) == n
        buffer[:] = b"\x00" * len(buffer)  # reclaim, as the ring would
        stats = broker.copy_stats
        assert stats["frames_emitted"] == n
        assert stats["bytes_copied"] == 0
        assert stats["bytes_copied_per_frame"] == 0.0
        assert broker.stats.flushes == n

    def test_broker_feed_borrowed_detaches_partial_tail(self):
        data, n = frame_stream(3)
        split = len(data) - 9
        broker = FlushBroker(session_config=SessionConfig())
        first = bytearray(data[:split])
        routed = broker.feed_borrowed(memoryview(first))
        first[:] = b"\x00" * len(first)  # overwrite the reclaimed buffer
        routed += broker.feed_borrowed(memoryview(bytearray(data[split:])))
        assert routed == n
        stats = broker.copy_stats
        # Only the split frame pays: its buffered prefix is materialized by
        # the detach, and completing it joins the frame once — bounded by two
        # frame-sized copies no matter what, while the whole-chunk frames
        # stayed at zero.
        frame_size = len(data) / n
        assert 0 < stats["bytes_copied"] <= 2 * frame_size + _HEADER.size
        assert stats["bytes_copied_per_frame"] <= frame_size

    def test_sharded_ring_plane_is_zero_copy_and_equivalent(self):
        """Whole-frame routing over the shm ring: 0 copies in the shards,
        predictions identical to the legacy socket plane."""

        def run(ring_bytes: int):
            service = ShardedService(
                2, ServiceConfig(session=SessionConfig(), ring_bytes=ring_bytes)
            )
            try:
                for i in range(4):
                    job = f"job-{i}"
                    for flush_index in range(3):
                        service.ingest_flush(job, make_flush(flush_index))
                service.drain()
                periods = {
                    job: service.publisher.latest_period(job) for job in sorted(service.jobs)
                }
                return periods, service.stats()
            finally:
                service.close()

        ring_periods, ring_stats = run(1 << 16)
        sock_periods, _ = run(0)
        assert ring_periods == sock_periods
        assert ring_stats["bytes_copied_per_frame"] == 0.0
