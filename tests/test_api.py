"""Tests of the unified ``repro.api`` facade and the compatibility shims.

The facade must be sugar, never semantics: ``api.detect`` / ``api.predict``
must return exactly what the layer APIs return, ``api.serve`` +
``api.connect`` must stand up the same gateway/client pair the service layer
exposes, and every pre-redesign public import and constructor signature must
keep working (with a ``DeprecationWarning`` where it was superseded).
"""

from __future__ import annotations

import dataclasses

import pytest

import repro
import repro.api as api
from repro.core import FtioConfig, detect as core_detect
from repro.core.online import replay_online
from repro.workloads.hacc import hacc_flush_times, hacc_io_trace


@pytest.fixture(scope="module")
def trace():
    return hacc_io_trace(ranks=2, loops=6, period=5.0, first_phase_delay=3.0, seed=9)


class TestReproConfig:
    def test_frozen(self):
        config = api.ReproConfig()
        with pytest.raises(dataclasses.FrozenInstanceError):
            config.shards = 2

    def test_with_replaces_top_level_fields(self):
        config = api.ReproConfig().with_(shards=4, token=7, max_workers=2)
        assert (config.shards, config.token, config.max_workers) == (4, 7, 2)
        assert api.ReproConfig().shards == 0, "the original is untouched"

    def test_with_analysis_replaces_ftio_fields(self):
        config = api.ReproConfig().with_analysis(
            sampling_frequency=1.0, use_autocorrelation=False
        )
        assert config.analysis.sampling_frequency == 1.0
        assert config.analysis.use_autocorrelation is False
        # Untouched analysis fields keep their FtioConfig defaults.
        assert config.analysis.tolerance == FtioConfig().tolerance

    def test_lowering_to_layer_configs(self):
        config = api.ReproConfig(
            max_samples=123,
            min_requests=3,
            max_workers=5,
            backend="process",
            token=9,
            auto_revive=True,
        )
        session = config.session_config()
        assert session.max_samples == 123 and session.min_requests == 3
        assert session.config is config.analysis
        service = config.service_config()
        assert service.max_workers == 5 and service.backend == "process"
        assert service.token == 9 and service.auto_revive is True
        assert service.session == session

    def test_build_service_shapes(self):
        from repro.service import PredictionService, ShardedService

        single = api.ReproConfig().build_service()
        assert isinstance(single, PredictionService)
        single.close()
        sharded = api.ReproConfig(shards=2).build_service()
        assert isinstance(sharded, ShardedService)
        assert sharded.n_shards == 2
        sharded.close()


class TestVerbs:
    def test_detect_matches_core(self, trace):
        config = api.ReproConfig().with_analysis(
            sampling_frequency=10.0, use_autocorrelation=False
        )
        ours = api.detect(trace, config=config)
        reference = core_detect(trace, sampling_frequency=10.0, use_autocorrelation=False)
        assert ours.dominant_frequency == reference.dominant_frequency
        assert ours.period == reference.period
        assert ours.confidence == reference.confidence

    def test_detect_accepts_bare_overrides(self, trace):
        ours = api.detect(trace, sampling_frequency=10.0, use_autocorrelation=False)
        reference = core_detect(trace, sampling_frequency=10.0, use_autocorrelation=False)
        assert ours.period == reference.period

    def test_predict_matches_replay_online(self, trace):
        times = hacc_flush_times(trace)
        config = api.ReproConfig(adaptive_window=False).with_analysis(
            sampling_frequency=10.0,
            use_autocorrelation=False,
            compute_characterization=False,
        )
        ours = api.predict(trace, times, config=config)
        reference = replay_online(
            trace, times, config=config.analysis, adaptive_window=False
        )
        assert [s.period for s in ours] == [s.period for s in reference]
        assert [s.window for s in ours] == [s.window for s in reference]

    def test_serve_and_connect_round_trip(self, trace):
        from repro.trace.jsonl import trace_to_flushes

        config = api.ReproConfig(token=3).with_analysis(
            sampling_frequency=10.0,
            use_autocorrelation=False,
            compute_characterization=False,
        )
        flushes = trace_to_flushes(trace, hacc_flush_times(trace))
        with api.serve(config) as gateway:
            with api.connect(gateway.address, token=3) as client:
                for flush in flushes:
                    client.submit_flush("job-a", flush)
                client.drain()
                stats = client.stats()
                assert stats["jobs"] == 1
                assert stats["detections"] > 0

    def test_connect_parses_host_port(self):
        with pytest.raises(ValueError):
            api.connect("no-port-here")
        with pytest.raises(ValueError):
            api.connect(":123")


class TestCompatibility:
    def test_sharded_token_kwarg_is_deprecated_but_works(self):
        from repro.service import ShardedService

        with pytest.warns(DeprecationWarning, match="ServiceConfig"):
            service = ShardedService(1, token=4)
        try:
            assert service.token == 4
        finally:
            service.close()

    def test_token_flows_from_service_config(self):
        from repro.service import ServiceConfig, ShardedService

        with ShardedService(1, ServiceConfig(token=6)) as service:
            assert service.token == 6

    def test_every_pre_redesign_import_still_works(self):
        # The import surface of PRs 1-3, verbatim: nothing may break.
        from repro import Ftio, FtioConfig, OnlinePredictor, Trace  # noqa: F401
        from repro.analysis.benchmark import (  # noqa: F401
            run_perf_suite,
            run_service_benchmark,
            write_report,
        )
        from repro.scheduling.periods import ServicePeriodProvider  # noqa: F401
        from repro.service import (  # noqa: F401
            BrokerStats,
            DetectionDispatcher,
            FlushBroker,
            HashRing,
            JobSession,
            PhaseFlushBridge,
            PredictionPublisher,
            PredictionService,
            PredictionUpdate,
            ProcessPoolBackend,
            RingColumnStore,
            ServiceConfig,
            SessionConfig,
            ShardedService,
            ThreadBackend,
            apply_state,
            load_snapshot,
            make_backend,
            merge_states,
            restore_state,
            save_snapshot,
            snapshot_state,
            split_state,
        )
        from repro.service.snapshot import SNAPSHOT_VERSION  # noqa: F401
        from repro.trace.framing import (  # noqa: F401
            FrameDecoder,
            FrameReader,
            FrameSplitter,
            FrameWriter,
            compact_spool,
            encode_frame,
            iter_frames,
        )

    def test_legacy_constructors_unchanged(self):
        # Positional/keyword shapes that PR-2/PR-3 era code used.
        from repro.service import (
            PredictionService,
            ServiceConfig,
            SessionConfig,
            ShardedService,
        )

        config = ServiceConfig(
            session=SessionConfig(max_samples=100), max_workers=0, max_pending=8
        )
        service = PredictionService(config)
        service.close()
        with ShardedService(1, config, replicas=16) as sharded:
            assert sharded.n_shards == 1

    def test_new_surface_is_exported(self):
        assert repro.ReproConfig is api.ReproConfig
        from repro.client import ServiceClient  # noqa: F401
        from repro.service import ServiceGateway, ThreadedGateway, protocol  # noqa: F401

        # v2 added chunked snapshot transfer + resharding; v1 peers still
        # negotiate (SUPPORTED_VERSIONS is cumulative, never truncated).
        assert protocol.PROTOCOL_VERSION == 2
        assert protocol.SUPPORTED_VERSIONS == (1, 2)
