"""Unit tests for the shared utilities (stats, validation, rng)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.utils.rng import as_generator, spawn
from repro.utils.stats import (
    coefficient_of_variation,
    geometric_mean,
    safe_mean,
    safe_std,
    weighted_mean,
    zscores,
)
from repro.utils.validation import (
    check_in_range,
    check_non_negative,
    check_positive,
    check_positive_int,
    check_probability,
)


class TestZscores:
    def test_matches_definition(self):
        values = np.array([1.0, 2.0, 3.0, 10.0])
        expected = (np.abs(values) - abs(values.mean())) / values.std()
        assert np.allclose(zscores(values), expected)

    def test_constant_input_gives_zeros(self):
        assert np.allclose(zscores(np.full(5, 3.0)), 0.0)

    def test_empty_input(self):
        assert zscores([]).size == 0


class TestStats:
    def test_coefficient_of_variation(self):
        assert coefficient_of_variation([5.0, 5.0, 5.0]) == 0.0
        values = np.array([1.0, 3.0])
        assert coefficient_of_variation(values) == pytest.approx(values.std() / 2.0)

    def test_coefficient_of_variation_weighted(self):
        values = [1.0, 100.0]
        # All weight on the first value: no spread.
        assert coefficient_of_variation(values, weights=[1.0, 0.0]) == pytest.approx(0.0)

    def test_coefficient_of_variation_degenerate(self):
        assert coefficient_of_variation([]) == float("inf")
        assert coefficient_of_variation([-1.0, 1.0]) == float("inf")

    def test_weighted_mean(self):
        assert weighted_mean([1.0, 3.0], [1.0, 3.0]) == pytest.approx(2.5)
        assert weighted_mean([1.0, 3.0], [0.0, 0.0]) == pytest.approx(2.0)
        with pytest.raises(ValueError):
            weighted_mean([1.0], [1.0, 2.0])

    def test_safe_mean_std(self):
        assert safe_mean([]) == 0.0
        assert safe_std([]) == 0.0
        assert safe_mean([2.0, 4.0]) == pytest.approx(3.0)

    def test_geometric_mean(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)
        assert geometric_mean([]) == 0.0
        with pytest.raises(ValueError):
            geometric_mean([1.0, -1.0])


class TestValidation:
    def test_check_positive(self):
        assert check_positive(1.5, "x") == 1.5
        with pytest.raises(ConfigurationError):
            check_positive(0.0, "x")

    def test_check_non_negative(self):
        assert check_non_negative(0.0, "x") == 0.0
        with pytest.raises(ConfigurationError):
            check_non_negative(-0.1, "x")

    def test_check_probability(self):
        assert check_probability(0.5, "p") == 0.5
        with pytest.raises(ConfigurationError):
            check_probability(1.5, "p")

    def test_check_in_range(self):
        assert check_in_range(0.5, "x", low=0.0, high=1.0) == 0.5
        with pytest.raises(ConfigurationError):
            check_in_range(0.0, "x", low=0.0, high=1.0, inclusive=False)

    def test_check_positive_int(self):
        assert check_positive_int(3, "n") == 3
        with pytest.raises(ConfigurationError):
            check_positive_int(0, "n")
        with pytest.raises(ConfigurationError):
            check_positive_int(2.5, "n")


class TestRng:
    def test_as_generator_passthrough(self):
        rng = np.random.default_rng(0)
        assert as_generator(rng) is rng

    def test_as_generator_seeded_reproducible(self):
        assert as_generator(5).integers(0, 100) == as_generator(5).integers(0, 100)

    def test_spawn_independent_streams(self):
        children = spawn(np.random.default_rng(1), 3)
        assert len(children) == 3
        draws = [c.integers(0, 10**9) for c in children]
        assert len(set(draws)) == 3
        with pytest.raises(ValueError):
            spawn(np.random.default_rng(1), -1)
