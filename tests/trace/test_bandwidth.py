"""Unit tests for the application-level bandwidth signal."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import EmptyTraceError
from repro.trace.bandwidth import BandwidthSignal, bandwidth_signal, phase_boundaries
from repro.trace.record import IORequest
from repro.trace.trace import Trace


def single_request_trace(nbytes: int = 1000, start: float = 0.0, end: float = 1.0) -> Trace:
    return Trace.from_requests([IORequest(rank=0, start=start, end=end, nbytes=nbytes)])


class TestBandwidthSignal:
    def test_single_request_rate(self):
        signal = bandwidth_signal(single_request_trace(nbytes=1000, start=0.0, end=2.0))
        assert signal.t_start == pytest.approx(0.0)
        assert signal.t_end == pytest.approx(2.0)
        assert signal.values == pytest.approx([500.0])

    def test_overlapping_requests_sum(self):
        trace = Trace.from_requests(
            [
                IORequest(rank=0, start=0.0, end=2.0, nbytes=2000),
                IORequest(rank=1, start=1.0, end=3.0, nbytes=2000),
            ]
        )
        signal = bandwidth_signal(trace)
        # Segments: [0,1) -> 1000, [1,2) -> 2000, [2,3) -> 1000.
        assert signal.at([0.5, 1.5, 2.5]) == pytest.approx([1000.0, 2000.0, 1000.0])

    def test_volume_conservation(self, periodic_trace):
        signal = bandwidth_signal(periodic_trace)
        assert signal.volume() == pytest.approx(periodic_trace.volume, rel=1e-9)

    def test_empty_trace_rejected(self):
        with pytest.raises(EmptyTraceError):
            bandwidth_signal(Trace.empty())

    def test_kind_filter(self, simple_trace):
        writes_only = bandwidth_signal(simple_trace, kind="write")
        everything = bandwidth_signal(simple_trace, kind=None)
        assert writes_only.volume() < everything.volume()

    def test_at_outside_range_is_zero(self):
        signal = bandwidth_signal(single_request_trace())
        assert signal.at([-1.0, 10.0]) == pytest.approx([0.0, 0.0])

    def test_cumulative_volume_is_monotonic(self, periodic_trace):
        signal = bandwidth_signal(periodic_trace)
        times = np.linspace(signal.t_start, signal.t_end, 50)
        cumulative = signal.cumulative_volume(times)
        assert np.all(np.diff(cumulative) >= -1e-6)
        assert cumulative[-1] == pytest.approx(signal.volume(), rel=1e-9)

    def test_restricted_window(self):
        trace = Trace.from_requests(
            [
                IORequest(rank=0, start=0.0, end=1.0, nbytes=1000),
                IORequest(rank=0, start=5.0, end=6.0, nbytes=1000),
            ]
        )
        signal = bandwidth_signal(trace)
        sub = signal.restricted(4.0, 7.0)
        assert sub.t_start == pytest.approx(4.0)
        assert sub.t_end == pytest.approx(6.0)
        assert sub.volume() == pytest.approx(1000.0)

    def test_mean_bandwidth(self):
        signal = bandwidth_signal(single_request_trace(nbytes=1000, start=0.0, end=4.0))
        assert signal.mean_bandwidth() == pytest.approx(250.0)

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            BandwidthSignal(times=np.array([0.0, 1.0]), values=np.array([1.0, 2.0]))
        with pytest.raises(ValueError):
            BandwidthSignal(times=np.array([0.0, 0.0, 1.0]), values=np.array([1.0, 2.0]))

    def test_zero_duration_request_contributes_volume(self):
        trace = Trace.from_requests([IORequest(rank=0, start=1.0, end=1.0, nbytes=500)])
        signal = bandwidth_signal(trace)
        assert signal.volume() == pytest.approx(500.0, rel=1e-6)


class TestPhaseBoundaries:
    def test_boundaries_above_threshold(self):
        trace = Trace.from_requests(
            [
                IORequest(rank=0, start=0.0, end=1.0, nbytes=1000),
                IORequest(rank=0, start=5.0, end=6.0, nbytes=1000),
            ]
        )
        signal = bandwidth_signal(trace)
        intervals = phase_boundaries(signal, threshold=0.0)
        assert len(intervals) == 2
        assert intervals[0] == pytest.approx((0.0, 1.0))
        assert intervals[1] == pytest.approx((5.0, 6.0))

    def test_threshold_filters_low_activity(self):
        trace = Trace.from_requests(
            [
                IORequest(rank=0, start=0.0, end=1.0, nbytes=10_000),
                IORequest(rank=0, start=5.0, end=6.0, nbytes=10),
            ]
        )
        signal = bandwidth_signal(trace)
        intervals = phase_boundaries(signal, threshold=100.0)
        assert len(intervals) == 1
        assert intervals[0][0] == pytest.approx(0.0)
