"""Unit tests for the trace file formats: JSON Lines, MessagePack, Darshan, Recorder."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.exceptions import TraceFormatError
from repro.trace import jsonl, msgpack
from repro.trace.darshan import (
    DarshanHeatmap,
    heatmap_from_trace,
    heatmap_to_signal,
    read_heatmap,
    write_heatmap,
)
from repro.trace.record import IOKind, IORequest
from repro.trace.recorder import read_recorder_directory, write_recorder_directory
from repro.trace.trace import Trace


class TestJsonLines:
    def test_round_trip_single_flush(self, simple_trace, tmp_path):
        path = tmp_path / "trace.jsonl"
        flushes = jsonl.write_trace(simple_trace, path)
        assert flushes == 1
        restored = jsonl.read_trace(path)
        assert len(restored) == len(simple_trace)
        assert restored.volume == simple_trace.volume
        assert restored.metadata["application"] == "unit-test"

    def test_round_trip_multiple_flushes(self, simple_trace, tmp_path):
        path = tmp_path / "trace.jsonl"
        flushes = jsonl.write_trace(simple_trace, path, requests_per_flush=2)
        assert flushes == 2
        records = list(jsonl.iter_flushes(path))
        assert [r.flush_index for r in records] == [0, 1]
        assert jsonl.read_trace(path).volume == simple_trace.volume

    def test_writer_appends(self, simple_requests, tmp_path):
        path = tmp_path / "append.jsonl"
        writer = jsonl.JsonLinesTraceWriter(path)
        writer.append(simple_requests[:2], timestamp=1.5)
        writer.append(simple_requests[2:], timestamp=4.0)
        assert writer.flush_count == 2
        assert len(list(jsonl.iter_flushes(path))) == 2

    def test_malformed_json_raises(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("{not json}\n")
        with pytest.raises(TraceFormatError):
            list(jsonl.iter_flushes(path))

    def test_missing_field_raises(self, tmp_path):
        path = tmp_path / "incomplete.jsonl"
        path.write_text(json.dumps({"flush_index": 0}) + "\n")
        with pytest.raises(TraceFormatError):
            list(jsonl.iter_flushes(path))

    def test_empty_lines_skipped(self, simple_trace, tmp_path):
        path = tmp_path / "gaps.jsonl"
        jsonl.write_trace(simple_trace, path)
        with path.open("a") as handle:
            handle.write("\n\n")
        assert len(jsonl.read_trace(path)) == len(simple_trace)


class TestMsgpack:
    @pytest.mark.parametrize(
        "obj",
        [
            None,
            True,
            False,
            0,
            127,
            128,
            -1,
            -33,
            2**40,
            -(2**40),
            3.14159,
            "",
            "hello",
            "x" * 300,
            b"\x00\x01binary",
            [1, "two", 3.0, None],
            list(range(100)),
            {"a": 1, "nested": {"b": [1, 2, 3]}},
        ],
    )
    def test_scalar_and_container_round_trip(self, obj):
        assert msgpack.unpackb(msgpack.packb(obj)) == obj

    def test_large_collections_round_trip(self):
        big_list = list(range(70_000))
        assert msgpack.unpackb(msgpack.packb(big_list)) == big_list
        big_map = {f"key-{i}": i for i in range(20_000)}
        assert msgpack.unpackb(msgpack.packb(big_map)) == big_map

    def test_unsupported_type_rejected(self):
        with pytest.raises(TypeError):
            msgpack.packb(object())

    def test_trailing_bytes_rejected(self):
        data = msgpack.packb(1) + msgpack.packb(2)
        with pytest.raises(TraceFormatError):
            msgpack.unpackb(data)
        assert list(msgpack.unpack_stream(data)) == [1, 2]

    def test_truncated_data_rejected(self):
        data = msgpack.packb("hello world")
        with pytest.raises(TraceFormatError):
            msgpack.unpackb(data[:-3])

    def test_trace_round_trip(self, simple_trace, tmp_path):
        path = tmp_path / "trace.msgpack"
        msgpack.write_trace(simple_trace, path)
        restored = msgpack.read_trace(path)
        assert len(restored) == len(simple_trace)
        assert restored.volume == simple_trace.volume

    def test_writer_appends(self, simple_requests, tmp_path):
        path = tmp_path / "append.msgpack"
        writer = msgpack.MsgpackTraceWriter(path)
        writer.append(simple_requests[:1], timestamp=1.0)
        writer.append(simple_requests[1:], timestamp=4.0)
        assert len(list(msgpack.iter_flushes(path))) == 2


class TestMsgpackBoundaries:
    """Boundary values of the wire format, through packb/unpackb and the framed codec."""

    BOUNDARY_VALUES = [
        ("uint64_max", 2**64 - 1),
        ("uint32_max_plus_one", 2**32),
        ("int64_min", -(2**63)),
        ("int32_min_minus_one", -(2**31) - 1),
        ("fixint_edges", [127, 128, -32, -33]),
        ("bin8_max", b"\xff" * 255),
        ("bin8_boundary", b"\x00" * 256),  # first size needing bin16
        ("bin16_max", b"\xab" * 0xFFFF),
        ("str8_at_255", "s" * 255),
        ("fixstr_max", "f" * 31),
        ("str16_boundary", "t" * 256),
    ]

    @pytest.mark.parametrize("name,value", BOUNDARY_VALUES, ids=[n for n, _ in BOUNDARY_VALUES])
    def test_packb_round_trip(self, name, value):
        assert msgpack.unpackb(msgpack.packb(value)) == value

    def test_uint64_overflow_rejected(self):
        with pytest.raises(OverflowError):
            msgpack.packb(2**64)
        with pytest.raises(OverflowError):
            msgpack.packb(-(2**63) - 1)

    def test_wire_format_sizes(self):
        # uint64: 1 type byte + 8 payload bytes.
        assert len(msgpack.packb(2**64 - 1)) == 9
        # int64 min: 1 type byte + 8 payload bytes.
        assert len(msgpack.packb(-(2**63))) == 9
        # bin8 at 255 bytes: 2 header bytes; bin16 at 256: 3 header bytes.
        assert len(msgpack.packb(b"x" * 255)) == 257
        assert len(msgpack.packb(b"x" * 256)) == 259
        # str8 at 255 bytes: 2 header bytes (0xd9 + length).
        packed = msgpack.packb("s" * 255)
        assert packed[0] == 0xD9 and len(packed) == 257

    def test_boundary_values_survive_framed_codec(self):
        """The same boundary values round-trip inside a framed flush's metadata."""
        from repro.trace.framing import FrameDecoder, encode_frame

        metadata = {name: value for name, value in self.BOUNDARY_VALUES}
        flush = jsonl.FlushRecord(
            flush_index=2**31,
            timestamp=1.5,
            requests=(IORequest(rank=0, start=0.0, end=1.0, nbytes=2**62),),
            metadata=metadata,
        )
        decoder = FrameDecoder()
        decoder.feed(encode_frame(flush, job="boundary", payload_format="msgpack"))
        (frame,) = list(decoder.frames())
        assert frame.flush.flush_index == 2**31
        assert frame.flush.requests[0].nbytes == 2**62
        restored = frame.flush.metadata
        for name, value in self.BOUNDARY_VALUES:
            assert restored[name] == value, name


class TestDarshanHeatmap:
    def make_heatmap(self) -> DarshanHeatmap:
        return DarshanHeatmap(
            bin_width=10.0,
            write_bins=np.array([0.0, 100.0, 0.0, 100.0]),
            read_bins=np.array([1.0, 2.0, 3.0, 4.0]),
            metadata={"application": "test"},
        )

    def test_basic_properties(self):
        heatmap = self.make_heatmap()
        assert heatmap.n_bins == 4
        assert heatmap.duration == pytest.approx(40.0)
        assert heatmap.sampling_frequency == pytest.approx(0.1)
        assert heatmap.total_bytes(kind="write") == pytest.approx(200.0)
        assert heatmap.total_bytes(kind="read") == pytest.approx(10.0)

    def test_file_round_trip(self, tmp_path):
        heatmap = self.make_heatmap()
        path = tmp_path / "profile.json"
        write_heatmap(heatmap, path)
        restored = read_heatmap(path)
        assert restored.bin_width == heatmap.bin_width
        assert np.allclose(restored.write_bins, heatmap.write_bins)
        assert restored.metadata == heatmap.metadata

    def test_invalid_file_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{\"format\": \"something-else\"}")
        with pytest.raises(TraceFormatError):
            read_heatmap(path)

    def test_heatmap_to_signal_sets_fs_to_bin_width(self):
        heatmap = self.make_heatmap()
        signal = heatmap_to_signal(heatmap)
        assert signal.sampling_frequency == pytest.approx(0.1)
        assert signal.volume() == pytest.approx(200.0)

    def test_heatmap_from_trace_conserves_volume(self, periodic_trace):
        heatmap = heatmap_from_trace(periodic_trace, bin_width=5.0)
        assert heatmap.total_bytes(kind="write") == pytest.approx(periodic_trace.volume, rel=1e-6)

    def test_mismatched_bins_rejected(self):
        with pytest.raises(TraceFormatError):
            DarshanHeatmap(
                bin_width=1.0,
                write_bins=np.array([1.0, 2.0]),
                read_bins=np.array([1.0]),
            )


class TestRecorder:
    def test_directory_round_trip(self, simple_trace, tmp_path):
        directory = write_recorder_directory(simple_trace, tmp_path / "recorder")
        restored = read_recorder_directory(directory)
        assert len(restored) == len(simple_trace)
        assert restored.volume == simple_trace.volume
        assert restored.metadata["application"] == "unit-test"
        # Kinds survive the round trip.
        assert len(restored.filter_kind(IOKind.READ)) == 1

    def test_unknown_functions_ignored(self, tmp_path):
        directory = tmp_path / "recorder"
        directory.mkdir()
        (directory / "rank_0.csv").write_text(
            "function,start,end,bytes\n"
            "MPI_File_open,0.0,0.1,0\n"
            "MPI_File_write_all,1.0,2.0,100\n"
        )
        trace = read_recorder_directory(directory)
        assert len(trace) == 1
        assert trace.volume == 100

    def test_missing_directory_rejected(self, tmp_path):
        with pytest.raises(TraceFormatError):
            read_recorder_directory(tmp_path / "does-not-exist")

    def test_empty_directory_rejected(self, tmp_path):
        empty = tmp_path / "empty"
        empty.mkdir()
        with pytest.raises(TraceFormatError):
            read_recorder_directory(empty)

    def test_malformed_row_rejected(self, tmp_path):
        directory = tmp_path / "recorder"
        directory.mkdir()
        (directory / "rank_0.csv").write_text(
            "function,start,end,bytes\nMPI_File_write_all,zero,1.0,100\n"
        )
        with pytest.raises(TraceFormatError):
            read_recorder_directory(directory)
