"""Unit tests for the basic I/O record types."""

from __future__ import annotations

import pytest

from repro.trace.record import GroundTruth, IOKind, IOPhase, IORequest


class TestIORequest:
    def test_duration_and_bandwidth(self):
        req = IORequest(rank=0, start=1.0, end=3.0, nbytes=2_000_000)
        assert req.duration == pytest.approx(2.0)
        assert req.bandwidth == pytest.approx(1_000_000.0)

    def test_zero_duration_bandwidth_is_infinite(self):
        req = IORequest(rank=0, start=1.0, end=1.0, nbytes=10)
        assert req.duration == 0.0
        assert req.bandwidth == float("inf")

    def test_end_before_start_rejected(self):
        with pytest.raises(ValueError):
            IORequest(rank=0, start=2.0, end=1.0, nbytes=10)

    def test_negative_bytes_rejected(self):
        with pytest.raises(ValueError):
            IORequest(rank=0, start=0.0, end=1.0, nbytes=-1)

    def test_negative_rank_rejected(self):
        with pytest.raises(ValueError):
            IORequest(rank=-1, start=0.0, end=1.0, nbytes=1)

    def test_shifted_preserves_everything_else(self):
        req = IORequest(rank=3, start=1.0, end=2.0, nbytes=5, kind=IOKind.READ)
        moved = req.shifted(10.0)
        assert moved.start == pytest.approx(11.0)
        assert moved.end == pytest.approx(12.0)
        assert moved.rank == 3
        assert moved.nbytes == 5
        assert moved.kind is IOKind.READ

    def test_dict_round_trip(self):
        req = IORequest(rank=2, start=0.25, end=0.75, nbytes=123, kind=IOKind.READ)
        assert IORequest.from_dict(req.to_dict()) == req

    def test_from_dict_defaults_to_write(self):
        restored = IORequest.from_dict({"rank": 0, "start": 0, "end": 1, "bytes": 7})
        assert restored.kind is IOKind.WRITE


class TestIOPhase:
    def test_duration(self):
        phase = IOPhase(start=5.0, end=8.0, nbytes=100)
        assert phase.duration == pytest.approx(3.0)

    def test_invalid_boundaries_rejected(self):
        with pytest.raises(ValueError):
            IOPhase(start=2.0, end=1.0, nbytes=1)

    def test_negative_volume_rejected(self):
        with pytest.raises(ValueError):
            IOPhase(start=0.0, end=1.0, nbytes=-5)


class TestGroundTruth:
    def test_average_period_from_phase_starts(self):
        phases = tuple(IOPhase(start=10.0 * i, end=10.0 * i + 1, nbytes=1) for i in range(5))
        gt = GroundTruth(phases=phases)
        assert gt.average_period() == pytest.approx(10.0)

    def test_average_period_falls_back_to_mean_period(self):
        gt = GroundTruth(phases=(IOPhase(start=0, end=1, nbytes=1),), mean_period=42.0)
        assert gt.average_period() == pytest.approx(42.0)

    def test_average_period_none_when_unknown(self):
        assert GroundTruth().average_period() is None

    def test_phase_starts(self):
        phases = (IOPhase(start=1.0, end=2.0, nbytes=1), IOPhase(start=5.0, end=6.0, nbytes=1))
        assert GroundTruth(phases=phases).phase_starts == (1.0, 5.0)
