"""Unit tests for the discretization / sampling layer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, InsufficientSamplesError
from repro.trace.bandwidth import bandwidth_signal
from repro.trace.record import IORequest
from repro.trace.sampling import (
    DiscreteSignal,
    discretize_signal,
    discretize_trace,
    recommend_sampling_frequency,
)
from repro.trace.trace import Trace
from repro.workloads.miniio import miniio_trace


def square_trace(n_bursts: int = 5, period: float = 10.0, burst: float = 2.0) -> Trace:
    requests = [
        IORequest(rank=0, start=i * period, end=i * period + burst, nbytes=int(1e9))
        for i in range(n_bursts)
    ]
    return Trace.from_requests(requests)


class TestDiscretize:
    def test_sample_count_matches_duration(self):
        signal = bandwidth_signal(square_trace())
        discrete = discretize_signal(signal, 1.0)
        assert discrete.n_samples == int(np.floor(signal.duration)) + 1
        assert discrete.sampling_frequency == 1.0

    def test_bin_mode_conserves_volume(self):
        trace = square_trace()
        discrete = discretize_trace(trace, 0.5, mode="bin")
        assert discrete.volume() == pytest.approx(trace.volume, rel=1e-6)
        assert discrete.abstraction_error == pytest.approx(0.0, abs=1e-9)

    def test_point_mode_well_sampled_has_small_error(self):
        trace = square_trace()
        discrete = discretize_trace(trace, 50.0, mode="point")
        assert discrete.abstraction_error < 0.1

    def test_point_mode_undersampled_has_large_error(self):
        # miniIO-style sub-10-ms bursts sampled at 100 Hz: aliasing (Figure 6).
        trace = miniio_trace(ranks=4, bursts=20, seed=1)
        coarse = discretize_trace(trace, 100.0, mode="point")
        fine = discretize_trace(trace, 2000.0, mode="point")
        assert coarse.abstraction_error > 0.5
        assert fine.abstraction_error < 0.3
        assert coarse.abstraction_error > fine.abstraction_error

    def test_window_restriction(self):
        trace = square_trace(n_bursts=10)
        full = discretize_trace(trace, 1.0)
        windowed = discretize_trace(trace, 1.0, window=(0.0, 30.0))
        assert windowed.n_samples < full.n_samples
        assert windowed.duration <= 31.0

    def test_too_few_samples_rejected(self):
        signal = bandwidth_signal(square_trace(n_bursts=1, period=1.0, burst=0.5))
        with pytest.raises(InsufficientSamplesError):
            discretize_signal(signal, 0.1)

    def test_invalid_sampling_frequency(self):
        signal = bandwidth_signal(square_trace())
        with pytest.raises(ConfigurationError):
            discretize_signal(signal, 0.0)


class TestDiscreteSignal:
    def test_times_and_resolution(self):
        signal = DiscreteSignal(samples=np.ones(10), sampling_frequency=2.0, t_start=5.0)
        assert signal.duration == pytest.approx(5.0)
        assert signal.frequency_resolution == pytest.approx(0.2)
        assert signal.times[0] == pytest.approx(5.0)
        assert signal.times[-1] == pytest.approx(9.5)

    def test_volume(self):
        signal = DiscreteSignal(samples=np.full(4, 10.0), sampling_frequency=2.0)
        assert signal.volume() == pytest.approx(20.0)

    def test_window(self):
        signal = DiscreteSignal(samples=np.arange(10, dtype=float), sampling_frequency=1.0)
        sub = signal.window(3.0, 7.0)
        assert sub.n_samples == 4
        assert sub.samples[0] == pytest.approx(3.0)
        assert sub.t_start == pytest.approx(3.0)

    def test_window_invalid(self):
        signal = DiscreteSignal(samples=np.arange(10, dtype=float), sampling_frequency=1.0)
        with pytest.raises(ValueError):
            signal.window(5.0, 5.0)


class TestRecommendSamplingFrequency:
    def test_recommends_nyquist_of_shortest_request(self):
        trace = Trace.from_requests(
            [
                IORequest(rank=0, start=0.0, end=0.5, nbytes=100),
                IORequest(rank=0, start=1.0, end=1.1, nbytes=100),
            ]
        )
        fs = recommend_sampling_frequency(trace)
        assert fs == pytest.approx(2.0 / 0.1, rel=1e-6)

    def test_empty_trace_returns_zero(self):
        assert recommend_sampling_frequency(Trace.empty()) == 0.0
