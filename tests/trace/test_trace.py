"""Unit tests for the Trace container."""

from __future__ import annotations

import numpy as np
import pytest

from repro.constants import MIB
from repro.exceptions import EmptyTraceError, TraceError
from repro.trace.record import GroundTruth, IOKind, IOPhase, IORequest
from repro.trace.trace import Trace, concatenate_in_time, merge_traces


class TestConstruction:
    def test_from_requests_sorts_by_start(self, simple_requests):
        shuffled = list(reversed(simple_requests))
        trace = Trace.from_requests(shuffled)
        assert np.all(np.diff(trace.starts) >= 0)

    def test_empty_trace(self):
        trace = Trace.empty()
        assert trace.is_empty
        assert len(trace) == 0
        assert trace.volume == 0
        assert trace.duration == 0.0

    def test_len_and_iteration(self, simple_trace, simple_requests):
        assert len(simple_trace) == len(simple_requests)
        assert sorted(r.nbytes for r in simple_trace) == sorted(r.nbytes for r in simple_requests)

    def test_request_round_trip(self, simple_trace):
        first = simple_trace.request(0)
        assert isinstance(first, IORequest)
        assert first.start == simple_trace.t_start

    def test_mismatched_columns_rejected(self):
        with pytest.raises(TraceError):
            Trace(
                starts=np.array([0.0, 1.0]),
                ends=np.array([1.0]),
                nbytes=np.array([1, 2]),
                ranks=np.array([0, 0]),
                kinds=np.array(["write", "write"]),
            )


class TestAggregates:
    def test_volume_and_duration(self, simple_trace):
        assert simple_trace.volume == 260 * MIB
        assert simple_trace.t_start == pytest.approx(0.0)
        assert simple_trace.t_end == pytest.approx(4.0)
        assert simple_trace.duration == pytest.approx(4.0)

    def test_rank_count(self, simple_trace):
        assert simple_trace.rank_count == 2

    def test_empty_trace_raises_on_boundaries(self):
        with pytest.raises(EmptyTraceError):
            _ = Trace.empty().t_start


class TestTransformations:
    def test_filter_kind(self, simple_trace):
        writes = simple_trace.filter_kind("write")
        reads = simple_trace.filter_kind(IOKind.READ)
        assert len(writes) == 3
        assert len(reads) == 1
        assert len(writes) + len(reads) == len(simple_trace)

    def test_filter_ranks(self, simple_trace):
        only_zero = simple_trace.filter_ranks([0])
        assert set(only_zero.ranks.tolist()) == {0}

    def test_window_keeps_overlapping_requests(self, simple_trace):
        window = simple_trace.window(0.75, 3.25)
        # Requests [0,1], [0.5,1.5], [3,4] and [3,3.5] all overlap (0.75, 3.25).
        assert len(window) == 4
        narrow = simple_trace.window(1.6, 2.9)
        assert narrow.is_empty

    def test_window_invalid_bounds(self, simple_trace):
        with pytest.raises(TraceError):
            simple_trace.window(2.0, 1.0)

    def test_completed_before_keeps_only_finished_requests(self, simple_trace):
        # Requests end at 1.0, 1.5, 4.0 and 3.5 respectively.
        completed = simple_trace.completed_before(1.5)
        assert len(completed) == 2
        assert completed.ends.max() <= 1.5
        assert simple_trace.completed_before(0.5).is_empty
        assert len(simple_trace.completed_before(4.0)) == len(simple_trace)

    def test_completed_before_boundary_is_inclusive(self, simple_trace):
        # A request ending exactly at t has been flushed at t.
        assert len(simple_trace.completed_before(1.0)) == 1

    def test_completed_before_on_empty_trace(self):
        empty = Trace.empty()
        assert empty.completed_before(10.0) is empty

    def test_completed_before_preserves_metadata(self, simple_trace):
        assert simple_trace.completed_before(1.5).metadata == simple_trace.metadata

    def test_shifted(self, simple_trace):
        moved = simple_trace.shifted(100.0)
        assert moved.t_start == pytest.approx(simple_trace.t_start + 100.0)
        assert moved.volume == simple_trace.volume

    def test_with_ground_truth_and_metadata(self, simple_trace):
        gt = GroundTruth(phases=(IOPhase(start=0.0, end=1.0, nbytes=1),))
        updated = simple_trace.with_ground_truth(gt).with_metadata(extra=1)
        assert updated.ground_truth is gt
        assert updated.metadata["extra"] == 1
        assert updated.metadata["application"] == "unit-test"


class TestMergeAndConcatenate:
    def test_merge_traces_preserves_requests(self, simple_trace):
        other = simple_trace.shifted(10.0)
        merged = merge_traces([simple_trace, other])
        assert len(merged) == 2 * len(simple_trace)
        assert merged.volume == 2 * simple_trace.volume
        assert np.all(np.diff(merged.starts) >= 0)

    def test_merge_empty_list(self):
        assert merge_traces([]).is_empty

    def test_merge_keeps_single_ground_truth(self, simple_trace):
        gt = GroundTruth(phases=(IOPhase(start=0.0, end=1.0, nbytes=1),))
        merged = merge_traces([simple_trace.with_ground_truth(gt), simple_trace.shifted(50.0)])
        assert merged.ground_truth is gt

    def test_merge_drops_conflicting_ground_truths(self, simple_trace):
        gt = GroundTruth(phases=(IOPhase(start=0.0, end=1.0, nbytes=1),))
        merged = merge_traces(
            [simple_trace.with_ground_truth(gt), simple_trace.shifted(1.0).with_ground_truth(gt)]
        )
        assert merged.ground_truth is None

    def test_concatenate_in_time(self, simple_trace):
        combined = concatenate_in_time([simple_trace, simple_trace], gap=5.0)
        assert len(combined) == 2 * len(simple_trace)
        # The second copy starts after the first one ends plus the gap.
        assert combined.duration == pytest.approx(2 * simple_trace.duration + 5.0)

    def test_concatenate_empty(self):
        assert concatenate_in_time([]).is_empty
