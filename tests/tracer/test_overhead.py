"""Unit tests for the tracer overhead model (Figure 16 substrate)."""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError
from repro.tracer.overhead import (
    OverheadModelParameters,
    TracerOverheadModel,
    default_rank_sweep,
    measure_capture_cost,
)
from repro.tracer.tmio import TracerMode


class TestOverheadModel:
    def setup_method(self):
        self.model = TracerOverheadModel()

    def test_aggregated_overhead_share_stays_small(self):
        # The paper reports at most 0.6 % aggregated overhead in online mode.
        for ranks in default_rank_sweep():
            estimate = self.model.estimate(
                ranks=ranks,
                requests_per_rank=40,
                application_time=500.0,
                mode=TracerMode.ONLINE,
                flushes=8,
            )
            assert estimate.aggregated_overhead_ratio < 0.01

    def test_rank0_share_grows_with_ranks(self):
        estimates = self.model.sweep_ranks(
            [96, 384, 1536, 6144],
            requests_per_rank=40,
            application_time=500.0,
            mode=TracerMode.ONLINE,
            flushes=8,
        )
        ratios = [e.rank0_overhead_ratio for e in estimates]
        assert ratios == sorted(ratios)
        assert ratios[-1] > ratios[0]
        # Still bounded by the paper's 6.9 % for rank 0.
        assert ratios[-1] < 0.069

    def test_offline_cheaper_than_online_for_rank0(self):
        online = self.model.estimate(
            ranks=4608, requests_per_rank=40, application_time=500.0, mode="online", flushes=10
        )
        offline = self.model.estimate(
            ranks=4608, requests_per_rank=40, application_time=500.0, mode="offline"
        )
        assert offline.rank0_overhead < online.rank0_overhead

    def test_total_time_includes_overhead(self):
        estimate = self.model.estimate(
            ranks=96, requests_per_rank=10, application_time=100.0
        )
        assert estimate.total_time > estimate.application_time
        assert estimate.aggregated_application_time == pytest.approx(96 * 100.0)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            self.model.estimate(ranks=0, requests_per_rank=1, application_time=1.0)
        with pytest.raises(ConfigurationError):
            self.model.estimate(ranks=1, requests_per_rank=1, application_time=0.0)
        with pytest.raises(ConfigurationError):
            OverheadModelParameters(capture_cost_per_request=0.0)


class TestDefaultRankSweep:
    def test_multiples_of_cores_per_node(self):
        sweep = default_rank_sweep()
        assert sweep[0] == 96
        assert sweep[-1] == 10752
        assert all(r % 96 == 0 for r in sweep)

    def test_custom_limits(self):
        assert default_rank_sweep(max_ranks=384) == [96, 192, 384]


def test_measured_capture_cost_is_microsecond_scale():
    cost = measure_capture_cost(n_requests=2000)
    # Recording one request should cost far less than a millisecond.
    assert 0.0 < cost < 1e-3
