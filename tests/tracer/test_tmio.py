"""Unit tests for the simulated TMIO tracer."""

from __future__ import annotations

import pytest

from repro.exceptions import TraceError
from repro.trace import jsonl, msgpack
from repro.tracer.tmio import TmioTracer, TraceFileFormat, TracerMode


class TestOnlineMode:
    def test_flush_writes_incrementally(self, tmp_path):
        path = tmp_path / "online.jsonl"
        tracer = TmioTracer(mode=TracerMode.ONLINE, path=path, metadata={"app": "demo"})
        tracer.record_write(rank=0, start=0.0, end=1.0, nbytes=100)
        tracer.record_write(rank=1, start=0.5, end=1.5, nbytes=100)
        assert tracer.flush(timestamp=2.0) == 2
        tracer.record_read(rank=0, start=3.0, end=3.5, nbytes=50)
        assert tracer.flush() == 1
        # A flush with nothing pending is a no-op.
        assert tracer.flush() == 0

        flushes = list(jsonl.iter_flushes(path))
        assert len(flushes) == 2
        assert flushes[0].metadata["app"] == "demo"
        trace = jsonl.read_trace(path)
        assert len(trace) == 3

    def test_statistics(self):
        tracer = TmioTracer(mode=TracerMode.ONLINE)
        tracer.record_write(rank=0, start=0.0, end=1.0, nbytes=100)
        tracer.record_write(rank=0, start=1.0, end=2.0, nbytes=200)
        stats = tracer.statistics
        assert stats.recorded_requests == 2
        assert stats.recorded_bytes == 300
        assert stats.flushes == 0

    def test_msgpack_format(self, tmp_path):
        path = tmp_path / "online.msgpack"
        tracer = TmioTracer(mode=TracerMode.ONLINE, path=path, file_format=TraceFileFormat.MSGPACK)
        tracer.record_write(rank=0, start=0.0, end=1.0, nbytes=100)
        tracer.flush()
        assert len(msgpack.read_trace(path)) == 1


class TestOfflineMode:
    def test_finalize_writes_once(self, tmp_path):
        path = tmp_path / "offline.jsonl"
        tracer = TmioTracer(mode=TracerMode.OFFLINE, path=path)
        tracer.record_write(rank=0, start=0.0, end=1.0, nbytes=100)
        tracer.record_write(rank=0, start=2.0, end=3.0, nbytes=100)
        trace = tracer.finalize()
        assert len(trace) == 2
        assert len(list(jsonl.iter_flushes(path))) == 1

    def test_flush_rejected_in_offline_mode(self):
        tracer = TmioTracer(mode=TracerMode.OFFLINE)
        with pytest.raises(TraceError):
            tracer.flush()

    def test_record_after_finalize_rejected(self):
        tracer = TmioTracer(mode=TracerMode.OFFLINE)
        tracer.record_write(rank=0, start=0.0, end=1.0, nbytes=1)
        tracer.finalize()
        with pytest.raises(TraceError):
            tracer.record_write(rank=0, start=2.0, end=3.0, nbytes=1)

    def test_finalize_is_idempotent(self):
        tracer = TmioTracer(mode=TracerMode.OFFLINE)
        tracer.record_write(rank=0, start=0.0, end=1.0, nbytes=1)
        first = tracer.finalize()
        second = tracer.finalize()
        assert len(first) == len(second) == 1

    def test_in_memory_tracer_has_no_path(self):
        tracer = TmioTracer(mode=TracerMode.ONLINE)
        assert tracer.path is None
        tracer.record_write(rank=0, start=0.0, end=1.0, nbytes=1)
        tracer.flush()
        assert len(tracer.trace()) == 1
