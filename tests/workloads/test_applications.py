"""Unit tests for the application-specific workload generators (HACC-IO, LAMMPS, miniIO, Nek5000)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import Ftio, FtioConfig
from repro.trace.darshan import heatmap_to_signal
from repro.workloads.hacc import hacc_flush_times, hacc_io_trace
from repro.workloads.lammps import lammps_trace
from repro.workloads.miniio import miniio_trace
from repro.workloads.nek5000 import nek5000_heatmap, reduced_window


class TestHaccIo:
    def test_phase_count_and_period(self):
        trace = hacc_io_trace(ranks=8, loops=10, period=8.0, first_phase_delay=6.0, seed=1)
        gt = trace.ground_truth
        assert len(gt.phases) == 10
        # The delayed first phase pulls the average period above the nominal 8 s.
        assert gt.average_period() == pytest.approx(8.0, rel=0.25)
        assert gt.average_period() > 8.0

    def test_first_phase_is_delayed_and_longer(self):
        trace = hacc_io_trace(ranks=8, loops=6, period=8.0, first_phase_delay=6.0, seed=2)
        phases = trace.ground_truth.phases
        assert phases[0].start > 6.0
        later = np.mean([p.duration for p in phases[1:]])
        assert phases[0].duration > 1.5 * later

    def test_reads_and_writes_present(self):
        trace = hacc_io_trace(ranks=4, loops=4, seed=3)
        assert len(trace.filter_kind("write")) > 0
        assert len(trace.filter_kind("read")) > 0
        write_only = hacc_io_trace(ranks=4, loops=4, include_reads=False, seed=3)
        assert len(write_only.filter_kind("read")) == 0

    def test_flush_times_align_with_phase_ends(self):
        trace = hacc_io_trace(ranks=4, loops=5, seed=4)
        flushes = hacc_flush_times(trace)
        assert len(flushes) == 5
        ends = [p.end for p in trace.ground_truth.phases]
        assert flushes == pytest.approx(ends)

    def test_invalid_io_fraction(self):
        with pytest.raises(ValueError):
            hacc_io_trace(io_fraction=1.2)


class TestLammps:
    def test_dump_count_and_interval(self):
        trace = lammps_trace(ranks=8, dumps=12, dump_interval=27.4, seed=5)
        gt = trace.ground_truth
        assert len(gt.phases) == 12
        assert gt.average_period() == pytest.approx(27.4, rel=0.3)

    def test_low_bandwidth_long_dumps(self):
        trace = lammps_trace(ranks=8, dumps=6, seed=6)
        durations = [p.duration for p in trace.ground_truth.phases]
        # Dump phases take several seconds because the write path is slow.
        assert np.mean(durations) > 3.0

    def test_ftio_recovers_dump_interval(self):
        trace = lammps_trace(seed=3)
        result = Ftio(FtioConfig(sampling_frequency=10.0)).detect(trace)
        assert result.is_periodic
        assert result.period == pytest.approx(trace.ground_truth.average_period(), rel=0.2)


class TestMiniIO:
    def test_bursts_are_very_short(self):
        trace = miniio_trace(ranks=8, bursts=10, seed=7)
        durations = [p.duration for p in trace.ground_truth.phases]
        assert max(durations) < 0.05

    def test_burst_spacing(self):
        trace = miniio_trace(ranks=8, bursts=10, burst_interval=0.5, seed=8)
        assert trace.ground_truth.average_period() == pytest.approx(0.5, rel=0.2)

    def test_volume(self):
        trace = miniio_trace(ranks=4, bursts=5, burst_volume=4 * 2**20, seed=9)
        assert trace.volume == pytest.approx(5 * 4 * 2**20, rel=0.01)


class TestNek5000:
    def test_heatmap_structure(self):
        heatmap = nek5000_heatmap(seed=0)
        assert heatmap.duration == pytest.approx(86_000.0, rel=0.01)
        assert heatmap.metadata["application"] == "nek5000"
        # The irregular 30 GB / 75 GB phases stand well above the regular
        # 7 GB checkpoints (volumes are spread over a few bins each).
        nonzero = heatmap.write_bins[heatmap.write_bins > 0]
        assert heatmap.write_bins.max() > 4 * np.median(nonzero)
        # Total volume: 13 + 75 + 2x30 GB special phases plus ~16 checkpoints of 7 GB.
        total_gib = heatmap.total_bytes() / 2**30
        assert 150 < total_gib < 350

    def test_signal_conversion(self):
        heatmap = nek5000_heatmap(seed=0)
        signal = heatmap_to_signal(heatmap)
        assert signal.sampling_frequency == pytest.approx(1.0 / heatmap.bin_width)
        assert signal.volume() == pytest.approx(heatmap.total_bytes(), rel=1e-9)

    def test_window_sensitivity_matches_paper(self):
        heatmap = nek5000_heatmap(seed=0)
        ftio = Ftio()
        full = ftio.detect(heatmap)
        reduced = ftio.detect(heatmap, window=reduced_window())
        # Full trace: the irregular phases break the periodicity (or at best a
        # low-confidence detection); reduced window: a confident ≈4642 s period.
        assert reduced.is_periodic
        assert reduced.period == pytest.approx(4642.0, rel=0.1)
        if full.is_periodic:
            assert full.best_confidence < reduced.best_confidence

    def test_reproducible(self):
        a = nek5000_heatmap(seed=5)
        b = nek5000_heatmap(seed=5)
        assert np.allclose(a.write_bins, b.write_bins)
