"""Unit tests for the phase building blocks and the IOR generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.constants import MIB
from repro.exceptions import WorkloadError
from repro.workloads.ior import ior_periodic_job_trace, ior_phase, ior_trace
from repro.workloads.phases import PhaseSpec, generate_phase, phase_duration, phase_volume


class TestPhaseSpec:
    def test_requests_per_rank_and_duration(self):
        spec = PhaseSpec(ranks=4, volume_per_rank=10 * MIB, request_size=3 * MIB, rank_bandwidth=1e6)
        assert spec.requests_per_rank == 4
        assert spec.nominal_duration == pytest.approx(10 * MIB / 1e6)

    def test_request_larger_than_volume_rejected(self):
        with pytest.raises(WorkloadError):
            PhaseSpec(ranks=1, volume_per_rank=MIB, request_size=2 * MIB, rank_bandwidth=1e6)


class TestGeneratePhase:
    def test_volume_and_rank_assignment(self):
        spec = PhaseSpec(ranks=3, volume_per_rank=4 * MIB, request_size=MIB, rank_bandwidth=1e7)
        requests = generate_phase(spec, start=5.0, rank_offset=10)
        assert phase_volume(requests) == 3 * 4 * MIB
        assert {r.rank for r in requests} == {10, 11, 12}
        assert min(r.start for r in requests) == pytest.approx(5.0)

    def test_rank_delays_shift_individual_ranks(self):
        spec = PhaseSpec(ranks=2, volume_per_rank=MIB, request_size=MIB, rank_bandwidth=1e7)
        requests = generate_phase(spec, rank_delays=np.array([0.0, 3.0]))
        start_by_rank = {r.rank: r.start for r in requests}
        assert start_by_rank[1] - start_by_rank[0] == pytest.approx(3.0)

    def test_delay_length_mismatch_rejected(self):
        spec = PhaseSpec(ranks=2, volume_per_rank=MIB, request_size=MIB, rank_bandwidth=1e7)
        with pytest.raises(WorkloadError):
            generate_phase(spec, rank_delays=np.zeros(3))

    def test_jitter_changes_durations_deterministically(self):
        spec = PhaseSpec(ranks=2, volume_per_rank=8 * MIB, request_size=MIB, rank_bandwidth=1e7)
        a = generate_phase(spec, bandwidth_jitter=0.2, seed=1)
        b = generate_phase(spec, bandwidth_jitter=0.2, seed=1)
        c = generate_phase(spec, bandwidth_jitter=0.2, seed=2)
        assert [r.end for r in a] == [r.end for r in b]
        assert [r.end for r in a] != [r.end for r in c]

    def test_phase_duration_helper(self):
        spec = PhaseSpec(ranks=1, volume_per_rank=2 * MIB, request_size=MIB, rank_bandwidth=1e6)
        requests = generate_phase(spec)
        assert phase_duration(requests) == pytest.approx(2 * MIB / 1e6)
        assert phase_duration([]) == 0.0


class TestIorPhase:
    def test_default_phase_duration_matches_paper(self):
        requests = ior_phase(seed=0, duration_jitter=0.0)
        duration = phase_duration(requests)
        # 32 ranks × 3.5 GiB at ~10 GB/s aggregate → 11–12 s.
        assert 9.0 < duration < 15.0
        assert len({r.rank for r in requests}) == 32

    def test_custom_parameters(self):
        requests = ior_phase(
            ranks=4, volume_per_rank=8 * MIB, request_size=2 * MIB, aggregate_bandwidth=16 * MIB, seed=1
        )
        assert phase_volume(requests) == 4 * 8 * MIB
        assert phase_duration(requests) == pytest.approx(2.0, rel=0.5)


class TestIorTrace:
    def test_ground_truth_period(self):
        trace = ior_trace(ranks=4, iterations=6, compute_time=50.0, io_phase_duration=10.0, seed=2)
        gt = trace.ground_truth
        assert gt is not None
        assert len(gt.phases) == 6
        assert gt.average_period() == pytest.approx(60.0, rel=0.15)
        assert trace.metadata["application"] == "ior"

    def test_volume_scales_with_iterations(self):
        one = ior_trace(ranks=2, iterations=1, seed=3)
        four = ior_trace(ranks=2, iterations=4, seed=3)
        assert four.volume == pytest.approx(4 * one.volume, rel=1e-6)

    def test_explicit_bandwidth_respected(self):
        trace = ior_trace(ranks=2, iterations=2, aggregate_bandwidth=1e6, block_size=MIB, segments=1, seed=4)
        phase = trace.ground_truth.phases[0]
        # 2 ranks × 1 MiB at 1 MB/s aggregate → phase of ≈ 2.1 s.
        assert phase.duration == pytest.approx(2 * MIB / 1e6, rel=0.3)

    def test_reproducibility(self):
        a = ior_trace(ranks=2, iterations=3, seed=5)
        b = ior_trace(ranks=2, iterations=3, seed=5)
        assert np.allclose(a.starts, b.starts)
        assert np.allclose(a.ends, b.ends)


class TestIorPeriodicJobTrace:
    def test_period_and_io_fraction(self):
        trace = ior_periodic_job_trace(period=100.0, io_fraction=0.1, iterations=5, ranks=2, seed=6)
        gt = trace.ground_truth
        assert gt.mean_period == pytest.approx(100.0)
        assert gt.average_period() == pytest.approx(100.0, rel=0.1)
        # Each I/O phase lasts about io_fraction * period.
        durations = [p.duration for p in gt.phases]
        assert np.mean(durations) == pytest.approx(10.0, rel=0.3)

    def test_invalid_io_fraction(self):
        with pytest.raises(ValueError):
            ior_periodic_job_trace(period=10.0, io_fraction=1.5)
