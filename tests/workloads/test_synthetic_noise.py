"""Unit tests for the semi-synthetic generator and the noise traces."""

from __future__ import annotations

import numpy as np
import pytest

from repro.constants import MIB
from repro.exceptions import WorkloadError
from repro.trace.bandwidth import bandwidth_signal
from repro.workloads.noise import NoiseLevel, add_noise, noise_trace
from repro.workloads.synthetic import (
    PhaseLibrary,
    SemiSyntheticGenerator,
    SyntheticAppConfig,
    mean_period,
)


class TestPhaseLibrary:
    def test_generated_library_size_and_durations(self, small_phase_library):
        assert small_phase_library.size == 6
        durations = small_phase_library.durations()
        assert len(durations) == 6
        assert np.all(durations > 0)
        assert small_phase_library.mean_duration() == pytest.approx(durations.mean())

    def test_default_library_duration_matches_paper(self):
        library = PhaseLibrary.generate(n_phases=5, seed=1)
        # The paper's phases average ≈ 10.4 s, all within [10.2, 13.4] s.
        assert 8.0 < library.mean_duration() < 16.0

    def test_pick_is_deterministic_per_rng(self, small_phase_library):
        rng_a = np.random.default_rng(0)
        rng_b = np.random.default_rng(0)
        assert small_phase_library.pick(rng_a) is small_phase_library.pick(rng_b)

    def test_empty_library_rejected(self):
        with pytest.raises(WorkloadError):
            PhaseLibrary(phases=(), ranks=4)


class TestSemiSyntheticGenerator:
    def test_iteration_count_and_ground_truth(self, small_generator):
        config = SyntheticAppConfig(iterations=5, compute_mean=4.0)
        trace = small_generator.generate(config, seed=1)
        assert trace.ground_truth is not None
        assert len(trace.ground_truth.phases) == 5
        assert trace.metadata["application"] == "semi-synthetic"
        assert mean_period(trace) > 4.0

    def test_mean_period_tracks_compute_time(self, small_generator):
        short = small_generator.generate(SyntheticAppConfig(iterations=5, compute_mean=2.0), seed=2)
        long = small_generator.generate(SyntheticAppConfig(iterations=5, compute_mean=20.0), seed=2)
        assert mean_period(long) > mean_period(short)

    def test_desync_stretches_phases(self, small_generator):
        tight = small_generator.generate(
            SyntheticAppConfig(iterations=4, compute_mean=5.0, desync_mean=0.0), seed=3
        )
        loose = small_generator.generate(
            SyntheticAppConfig(iterations=4, compute_mean=5.0, desync_mean=10.0), seed=3
        )
        tight_durations = np.mean([p.duration for p in tight.ground_truth.phases])
        loose_durations = np.mean([p.duration for p in loose.ground_truth.phases])
        assert loose_durations > tight_durations

    def test_compute_variability_spreads_periods(self, small_generator):
        steady = small_generator.generate(
            SyntheticAppConfig(iterations=8, compute_mean=5.0, compute_std=0.0), seed=4
        )
        wobbly = small_generator.generate(
            SyntheticAppConfig(iterations=8, compute_mean=5.0, compute_std=10.0), seed=4
        )
        def period_std(trace):
            starts = np.array([p.start for p in trace.ground_truth.phases])
            return float(np.std(np.diff(starts)))
        assert period_std(wobbly) > period_std(steady)

    def test_noise_adds_background_requests(self, small_generator):
        clean = small_generator.generate(SyntheticAppConfig(iterations=3, compute_mean=5.0), seed=5)
        noisy = small_generator.generate(
            SyntheticAppConfig(iterations=3, compute_mean=5.0, noise=NoiseLevel.HIGH), seed=5
        )
        assert len(noisy) > len(clean)
        assert noisy.ground_truth is not None  # ground truth survives noise overlay

    def test_batch_generation(self, small_generator):
        traces = small_generator.generate_batch(
            SyntheticAppConfig(iterations=3, compute_mean=5.0), count=3, seed=6
        )
        assert len(traces) == 3
        periods = {round(mean_period(t), 3) for t in traces}
        assert len(periods) >= 2  # independent draws differ

    def test_mean_period_requires_ground_truth(self, simple_trace):
        with pytest.raises(WorkloadError):
            mean_period(simple_trace)


class TestNoise:
    def test_noise_levels_have_expected_bandwidth(self):
        low = noise_trace(level="low", periods=5, seed=1)
        high = noise_trace(level="high", periods=5, seed=1)
        low_bw = bandwidth_signal(low).max_bandwidth()
        high_bw = bandwidth_signal(high).max_bandwidth()
        assert high_bw > low_bw
        assert low_bw == pytest.approx(500e6, rel=0.5)

    def test_none_level_is_empty(self):
        assert noise_trace(level=NoiseLevel.NONE).is_empty

    def test_noise_periodicity(self):
        trace = noise_trace(level="low", periods=10, period_length=2.2, seed=2)
        assert trace.duration == pytest.approx(10 * 2.2, rel=0.3)

    def test_add_noise_uses_new_rank(self, small_generator):
        app = small_generator.generate(SyntheticAppConfig(iterations=3, compute_mean=5.0), seed=7)
        noisy = add_noise(app, level="low", seed=8)
        assert noisy.rank_count == app.rank_count + 1
        assert noisy.volume > app.volume

    def test_add_noise_none_is_identity(self, simple_trace):
        assert add_noise(simple_trace, level=NoiseLevel.NONE) is simple_trace

    def test_invalid_duty_cycle(self):
        with pytest.raises(ValueError):
            noise_trace(duty_cycle=0.0)
